package fleet

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/workload"
	"repro/race"
	"repro/race/server"
)

// TestFleetMetricsExposition drives a two-backend fleet through an open,
// a migration, and a resume, then checks that the canonical fleet_*
// series, the Prometheus exposition, and the legacy JSON document all
// agree.
func TestFleetMetricsExposition(t *testing.T) {
	rt, locals, _ := startFleet(t, 2)
	ctx := context.Background()

	p, _ := workload.ProgramByName("avrora")
	tr := p.Generate(200000, 1)

	id := NewSessionID()
	sess, _, err := rt.routeOpen(ctx, id, server.SessionConfig{Analyses: []string{"ST-WDC"}})
	if err != nil {
		t.Fatal(err)
	}
	if err := sess.Feed(append([]race.Event(nil), tr.Events[:512]...)); err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Flush(); err != nil {
		t.Fatal(err)
	}
	sess.Release()

	holder, other := holderOf(t, locals, id)
	_ = holder
	if err := rt.MigrateSession(ctx, id, other.Name()); err != nil {
		t.Fatal(err)
	}
	sess2, _, _, err := rt.routeResume(ctx, id)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess2.Close(); err != nil {
		t.Fatal(err)
	}

	// Let at least one probe round complete so RTT has samples.
	deadline := time.Now().Add(2 * time.Second)
	for {
		if snapHistCount(rt.reg, "fleet_probe_rtt_seconds") > 0 || time.Now().After(deadline) {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}

	legacy := rt.Snapshot()
	if legacy.MigrationsStarted != 1 || legacy.MigrationsCompleted != 1 || legacy.MigrationsFailed != 0 {
		t.Fatalf("migrations: %+v", legacy)
	}
	var routed, resumed uint64
	for _, bm := range legacy.Backends {
		routed += bm.SessionsRouted
		resumed += bm.ResumesRouted
	}
	if routed != 1 || resumed != 1 {
		t.Fatalf("routed=%d resumed=%d, want 1 and 1", routed, resumed)
	}

	ts := httptest.NewServer(rt.Handler())
	defer ts.Close()

	// Prometheus view.
	res, err := http.Get(ts.URL + "/metrics?format=prometheus")
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	if ct := res.Header.Get("Content-Type"); ct != obs.TextContentType {
		t.Errorf("content type = %q", ct)
	}
	fams, err := obs.ParseText(res.Body)
	if err != nil {
		t.Fatalf("exposition does not parse: %v", err)
	}
	byName := make(map[string]obs.Family, len(fams))
	for _, f := range fams {
		byName[f.Name] = f
	}
	for name, want := range map[string]float64{
		"fleet_migrations_started_total":   1,
		"fleet_migrations_completed_total": 1,
		"fleet_migrations_failed_total":    0,
	} {
		f, ok := byName[name]
		if !ok || len(f.Samples) != 1 || f.Samples[0].Value != want {
			t.Errorf("%s: got %+v, want single sample %v", name, f.Samples, want)
		}
	}
	routedFam, ok := byName["fleet_sessions_routed_total"]
	if !ok || len(routedFam.Samples) != 2 {
		t.Fatalf("fleet_sessions_routed_total: %+v", routedFam)
	}
	var promRouted float64
	for _, s := range routedFam.Samples {
		if s.Label("backend") == "" {
			t.Errorf("series missing backend label: %+v", s)
		}
		promRouted += s.Value
	}
	if promRouted != float64(routed) {
		t.Errorf("prometheus routed sum %v != legacy %v", promRouted, routed)
	}
	upFam, ok := byName["fleet_backend_up"]
	if !ok || len(upFam.Samples) != 2 {
		t.Fatalf("fleet_backend_up: %+v", upFam)
	}
	for _, s := range upFam.Samples {
		if s.Value != 1 {
			t.Errorf("backend %s up = %v, want 1", s.Label("backend"), s.Value)
		}
	}
	for _, name := range []string{
		"fleet_migration_copy_seconds", "fleet_migration_recover_seconds",
		"fleet_migration_suspend_seconds", "fleet_probe_rtt_seconds",
	} {
		f, ok := byName[name]
		if !ok || f.Type != "histogram" {
			t.Errorf("%s: missing or not a histogram (%+v)", name, f.Type)
			continue
		}
		h := f.Histogram()
		if h == nil {
			t.Errorf("%s: no histogram samples", name)
			continue
		}
		if name != "fleet_probe_rtt_seconds" && h.Count != 1 {
			t.Errorf("%s count = %d, want 1", name, h.Count)
		}
	}

	// JSON view: canonical names alongside legacy aliases, same values.
	res2, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer res2.Body.Close()
	var body map[string]any
	if err := json.NewDecoder(res2.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if body["migrations_completed"] != float64(1) {
		t.Errorf("legacy migrations_completed = %v", body["migrations_completed"])
	}
	if body["fleet_migrations_completed_total"] != float64(1) {
		t.Errorf("canonical fleet_migrations_completed_total = %v", body["fleet_migrations_completed_total"])
	}
	if _, ok := body["backends"]; !ok {
		t.Error("legacy backends document missing")
	}
	foundRouted := false
	for k := range body {
		if strings.HasPrefix(k, `fleet_sessions_routed_total{backend="`) {
			foundRouted = true
		}
	}
	if !foundRouted {
		t.Error("JSON body missing labelled fleet_sessions_routed_total series")
	}
}

// TestFleetMetricsAcceptHeader: the router's /metrics honors an Accept
// header asking for text/plain as the content-negotiation alternative to
// ?format=prometheus.
func TestFleetMetricsAcceptHeader(t *testing.T) {
	rt, _, _ := startFleet(t, 1)
	ts := httptest.NewServer(rt.Handler())
	defer ts.Close()

	req, err := http.NewRequest(http.MethodGet, ts.URL+"/metrics", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Accept", "text/plain; version=0.0.4")
	res, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	if ct := res.Header.Get("Content-Type"); ct != obs.TextContentType {
		t.Errorf("content type = %q, want %q", ct, obs.TextContentType)
	}
	if _, err := obs.ParseText(res.Body); err != nil {
		t.Errorf("negotiated exposition does not parse: %v", err)
	}
}

// snapHistCount reads one histogram's count out of a registry snapshot.
func snapHistCount(reg *obs.Registry, name string) uint64 {
	for _, s := range reg.Snapshot() {
		if s.Name == name && s.Hist != nil {
			return s.Hist.Count
		}
	}
	return 0
}
