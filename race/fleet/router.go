package fleet

import (
	"bufio"
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/obs/tracing"
	"repro/internal/wire"
	"repro/race/server"
)

// Router is the stateless ingress in front of a raced fleet. It speaks the
// same wire protocol and HTTP API as a single raced, so clients point at
// the router instead of a backend and nothing else changes; the router
// assigns each session an id, hashes it onto a backend, and keeps the
// stream flowing across backend drains, crashes, and migrations.
//
// "Stateless" is literal: the only routing inputs are the configured
// backend list (the consistent-hash ring is a pure function of it) and
// live health state, both reconstructible at any moment. Sessions
// themselves live in backend journals — a router restart loses nothing.
type Router struct {
	backends map[string]Backend
	names    []string // sorted, fixed at construction
	ring     *ring
	health   *healthMonitor
	breakers map[string]*breaker
	reg      *obs.Registry
	metrics  *fleetMetrics
	logger   *slog.Logger
	tracer   *tracing.Tracer

	ioTimeout time.Duration
	wrapConn  func(net.Conn) net.Conn

	lockMu    sync.Mutex
	sessLocks map[string]*sync.Mutex
}

// Options configures a Router.
type Options struct {
	// VNodes is the virtual-node count per backend on the hash ring
	// (DefaultVNodes when zero).
	VNodes int
	// ProbeInterval and ProbeThreshold govern health checking
	// (DefaultProbeInterval / DefaultProbeThreshold when zero).
	ProbeInterval  time.Duration
	ProbeThreshold int

	// BreakerThreshold and BreakerCooldown govern the per-backend circuit
	// breakers (DefaultBreakerThreshold / DefaultBreakerCooldown when
	// zero): after BreakerThreshold consecutive unreachable-class RPC
	// failures, calls to the backend fail fast with ErrCircuitOpen until a
	// half-open trial succeeds.
	BreakerThreshold int
	BreakerCooldown  time.Duration

	// IOTimeout, when positive, cuts client connections that make no read
	// or write progress for the duration (the same stall guard raced's
	// Config.IOTimeout applies on backends).
	IOTimeout time.Duration

	// WrapConn, when set, wraps every accepted client connection — the
	// router-side network fault-injection seam (fault.WrapConn). Applied
	// under the IOTimeout layer, so injected stalls hit the same deadline
	// an organic stall would.
	WrapConn func(net.Conn) net.Conn

	// Registry receives the router's fleet_* metrics. Nil creates a
	// private registry, reachable via Router.Registry. A registry must
	// not be shared between Routers (series would collide).
	Registry *obs.Registry

	// Logger receives the router's structured logs. Nil uses
	// slog.Default().
	Logger *slog.Logger

	// Tracer, when set, records router-side spans (session, placement,
	// flush, migration) and propagates trace context to backends — a
	// client-initiated trace ID follows the stream through the router onto
	// its backend. Nil disables router spans; a client's trace context is
	// still forwarded to backends untouched.
	Tracer *tracing.Tracer
}

// New builds a router over backends and starts health probing. Close stops
// the probers.
func New(backends []Backend, opts Options) (*Router, error) {
	if len(backends) == 0 {
		return nil, errors.New("fleet: router needs at least one backend")
	}
	rt := &Router{
		backends:  make(map[string]Backend, len(backends)),
		breakers:  make(map[string]*breaker, len(backends)),
		sessLocks: make(map[string]*sync.Mutex),
		reg:       opts.Registry,
		logger:    opts.Logger,
		tracer:    opts.Tracer,
		ioTimeout: opts.IOTimeout,
		wrapConn:  opts.WrapConn,
	}
	if rt.reg == nil {
		rt.reg = obs.NewRegistry()
	}
	if rt.logger == nil {
		rt.logger = slog.Default()
	}
	for _, b := range backends {
		name := b.Name()
		if name == "" {
			return nil, errors.New("fleet: backend with empty name")
		}
		if _, dup := rt.backends[name]; dup {
			return nil, fmt.Errorf("fleet: duplicate backend name %q", name)
		}
		rt.backends[name] = b
		rt.names = append(rt.names, name)
		rt.breakers[name] = newBreaker(opts.BreakerThreshold, opts.BreakerCooldown)
	}
	rt.metrics = newFleetMetrics(rt.reg, rt.names)
	rt.ring = newRing(rt.names, opts.VNodes)
	rt.health = newHealthMonitor(rt.names, opts.ProbeInterval, opts.ProbeThreshold)
	rt.metrics.registerBackendUp(rt.reg, rt.names, rt.health)
	rt.health.onProbe = rt.metrics.probeHook
	rt.health.onRecover = func(name string) {
		if c, ok := rt.metrics.recoveries[name]; ok {
			c.Inc()
		}
	}
	rt.health.start(func(ctx context.Context, name string) error {
		return rt.backends[name].Healthz(ctx)
	})
	return rt, nil
}

// Registry exposes the router's metrics registry (the one from
// Options.Registry, or the private default).
func (rt *Router) Registry() *obs.Registry { return rt.reg }

// Tracer exposes the router's tracer (Options.Tracer; nil when tracing is
// off).
func (rt *Router) Tracer() *tracing.Tracer { return rt.tracer }

// Close stops health probing. Sessions keep living on their backends.
func (rt *Router) Close() { rt.health.close() }

// Backends returns the backend names on the ring (sorted order of
// construction).
func (rt *Router) Backends() []string { return append([]string(nil), rt.names...) }

// span starts a router-side child span under whatever trace context ctx
// carries (nil, costing nothing, when tracing is off).
func (rt *Router) span(ctx context.Context, name string) *tracing.Span {
	if rt.tracer == nil {
		return nil
	}
	return rt.tracer.Child(name, tracing.FromContext(ctx))
}

// lockSession serializes routing decisions and migrations per session id.
func (rt *Router) lockSession(id string) func() {
	rt.lockMu.Lock()
	m, ok := rt.sessLocks[id]
	if !ok {
		m = new(sync.Mutex)
		rt.sessLocks[id] = m
	}
	rt.lockMu.Unlock()
	m.Lock()
	return m.Unlock
}

// NewSessionID mints a router-assigned session id: "f" + 12 hex chars.
// The prefix-plus-randomness form cannot collide with a backend's own
// auto-assigned ids (which session-id validation reserves).
func NewSessionID() string {
	var b [6]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic("fleet: reading random session id: " + err.Error())
	}
	return "f" + hex.EncodeToString(b[:])
}

// isUnknownSession reports whether err says the backend has never heard of
// the session. Remote backends carry the sentinel through typed TError
// frames and the error-code header, so errors.Is reaches across the wire;
// RemoteErrorCode covers peers whose error chain kept only the code.
func isUnknownSession(err error) bool {
	return err != nil &&
		(errors.Is(err, server.ErrUnknown) || server.RemoteErrorCode(err) == wire.CodeUnknownSession)
}

// errorCode classifies a router-side error for the TError frame, deferring
// to the backend's own classification when the chain carries one.
func errorCode(err error) wire.ErrCode {
	if code := server.RemoteErrorCode(err); code != "" {
		return code
	}
	switch {
	case errors.Is(err, ErrBackendDraining):
		return wire.CodeDraining
	case errors.Is(err, ErrNoBackends):
		return wire.CodeFull
	}
	return server.ErrorCode(err)
}

// routeOpen places a fresh session: the id's ring sequence is tried in
// order, skipping unroutable backends and failing over past full, draining,
// or unreachable ones.
func (rt *Router) routeOpen(ctx context.Context, id string, cfg server.SessionConfig) (Session, Backend, error) {
	rsp := rt.span(ctx, "fleet.route_open")
	rsp.SetAttr("session", id)
	defer rsp.End()
	var lastErr error
	for _, name := range rt.ring.sequence(id) {
		if !rt.health.routable(name) || !rt.breakerAllow(name) {
			continue
		}
		b := rt.backends[name]
		sess, err := b.Open(ctx, id, cfg)
		rt.breakerRecord(name, err)
		if err == nil {
			rt.metrics.sessionsRouted[name].Inc()
			rsp.SetAttr("backend", name)
			return sess, b, nil
		}
		lastErr = err
		if isUnreachable(err) {
			rt.health.markDown(name)
			continue
		}
		if errors.Is(err, server.ErrServerFull) || errors.Is(err, server.ErrDraining) ||
			errors.Is(err, server.ErrServerClosed) {
			continue // capacity failover: next arc on the ring
		}
		return nil, nil, err
	}
	if lastErr == nil {
		lastErr = ErrNoBackends
	}
	return nil, nil, lastErr
}

// resumeOn resumes id on one backend, counting it and feeding the
// backend's circuit breaker.
func (rt *Router) resumeOn(ctx context.Context, b Backend, id string) (Session, uint64, error) {
	if !rt.breakerAllow(b.Name()) {
		return nil, 0, fmt.Errorf("%w: %s", ErrCircuitOpen, b.Name())
	}
	sess, fed, err := b.Resume(ctx, id)
	rt.breakerRecord(b.Name(), err)
	if err != nil {
		return nil, 0, err
	}
	rt.metrics.resumesRouted[b.Name()].Inc()
	return sess, fed, nil
}

// routeResume re-attaches a client to its session wherever it now lives,
// migrating it home if need be:
//
//  1. Try the id's routable ring sequence directly — the common case (the
//     session is live on its owner, or was already migrated to the next
//     arc after a crash).
//  2. Unknown there: scatter across the other reachable backends — the
//     session may be live on a draining backend (serve it in place; drain
//     means "no NEW sessions") or on one the ring no longer prefers.
//  3. Still unknown: look for the session's directory on disk — its
//     backend crashed or suspended it. If the dir is already under the
//     target, recover in place; otherwise copy + recover (migration), then
//     resume on the target.
//
// Steps 2–3 run under the session's router lock so concurrent resumes and
// admin migrations cannot race the directory move.
func (rt *Router) routeResume(ctx context.Context, id string) (Session, uint64, Backend, error) {
	rsp := rt.span(ctx, "fleet.route_resume")
	rsp.SetAttr("session", id)
	defer rsp.End()
	var target Backend
	var lastErr error
	for _, name := range rt.ring.sequence(id) {
		if !rt.health.routable(name) {
			continue
		}
		b := rt.backends[name]
		sess, fed, err := rt.resumeOn(ctx, b, id)
		if err == nil {
			return sess, fed, b, nil
		}
		lastErr = err
		if isUnreachable(err) {
			rt.health.markDown(name)
			continue
		}
		if isUnknownSession(err) {
			target = b
			break
		}
		return nil, 0, nil, err // busy, poisoned, …: not routing's problem
	}
	if target == nil {
		if lastErr == nil {
			lastErr = ErrNoBackends
		}
		return nil, 0, nil, lastErr
	}

	unlock := rt.lockSession(id)
	defer unlock()

	// Scatter: live somewhere the ring didn't send us?
	for _, name := range rt.ring.sequence(id) {
		b := rt.backends[name]
		if b == target || !rt.health.reachable(name) {
			continue
		}
		sess, fed, err := rt.resumeOn(ctx, b, id)
		if err == nil {
			if rt.health.routable(name) {
				return sess, fed, b, nil // serve in place
			}
			// Draining backend: move the session to the target now.
			sess.Release()
			if _, err := rt.suspendTimed(ctx, b, id); err != nil {
				return nil, 0, nil, fmt.Errorf("fleet: suspending %s on draining %s: %w", id, name, err)
			}
			if err := rt.migrate(ctx, id, b.DataDir(), target); err != nil {
				return nil, 0, nil, err
			}
			sess2, fed2, err2 := rt.resumeOn(ctx, target, id)
			return sess2, fed2, target, err2
		}
		if isUnreachable(err) {
			rt.health.markDown(name)
		}
	}

	// Disk: the session's home backend is gone (or sealed it); find the
	// directory and bring it to the target.
	if hasSessionDir(target.DataDir(), id) {
		if err := target.RecoverSession(ctx, id); err != nil {
			return nil, 0, nil, err
		}
		rt.metrics.migStarted.Inc() // in-place recovery counts as a (trivial) migration
		rt.metrics.migCompleted.Inc()
		sess, fed, err := rt.resumeOn(ctx, target, id)
		return sess, fed, target, err
	}
	for _, name := range rt.ring.sequence(id) {
		b := rt.backends[name]
		if b == target || !hasSessionDir(b.DataDir(), id) {
			continue
		}
		if rt.health.reachable(name) {
			// Best effort: if it is somehow still live there, seal it
			// before copying. "Unknown session" just means it already is.
			rt.suspendTimed(ctx, b, id)
		}
		if err := rt.migrate(ctx, id, b.DataDir(), target); err != nil {
			return nil, 0, nil, err
		}
		sess, fed, err := rt.resumeOn(ctx, target, id)
		return sess, fed, target, err
	}
	return nil, 0, nil, fmt.Errorf("%w: %s", server.ErrUnknown, id)
}

// ---- wire-protocol front end ----

// helloPayload/ackPayload/flushAckPayload mirror the raced wire payloads
// (they are defined by the protocol, not exported Go API).
type helloPayload struct {
	Proto     int                  `json:"proto"`
	Session   server.SessionConfig `json:"session"`
	SessionID string               `json:"session_id,omitempty"`
	Resume    string               `json:"resume,omitempty"`
	// Trace is an optional W3C traceparent from the client (ignored by
	// peers that predate tracing).
	Trace string `json:"trace,omitempty"`
}

// flushPayload is the optional TFlush payload carrying the client's
// per-flush trace context (old clients send no payload).
type flushPayload struct {
	Trace string `json:"trace,omitempty"`
}

type ackPayload struct {
	Session string `json:"session"`
	Fed     uint64 `json:"fed"`
}

type flushAckPayload struct {
	Fed uint64 `json:"fed"`
}

// ServeTCP accepts wire-protocol connections until the listener closes,
// one proxied session per connection.
func (rt *Router) ServeTCP(lis net.Listener) error {
	for {
		conn, err := lis.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return nil
			}
			var ne net.Error
			if errors.As(err, &ne) && ne.Timeout() {
				continue
			}
			return err
		}
		go rt.serveConn(conn)
	}
}

// serveConn proxies one client session onto its backend. Frame in, session
// op out: Events feed, Flush barriers (acked with the backend's durable
// offset), EOF closes and relays the backend's report bytes verbatim. When
// the backend fails mid-stream in a way that re-resuming can heal — drain,
// migration, crash — the client gets a Redirect frame instead of an Error
// and reconnects through the router, which lands it on the session's new
// home.
func (rt *Router) serveConn(conn net.Conn) {
	defer conn.Close()
	defer func() {
		if r := recover(); r != nil {
			rt.logger.Error("connection handler panic", "remote", conn.RemoteAddr(), "panic", r)
		}
	}()
	ctx := context.Background()
	// Seam order matches raced: the fault injector (if any) wraps the raw
	// socket, the deadline layer sits on top.
	wrapped := conn
	if rt.wrapConn != nil {
		wrapped = rt.wrapConn(wrapped)
	}
	if rt.ioTimeout > 0 {
		wrapped = server.WithIOTimeout(wrapped, rt.ioTimeout)
	}
	br := bufio.NewReaderSize(wrapped, 1<<16)
	bw := bufio.NewWriterSize(wrapped, 1<<16)

	sendErr := func(err error) {
		if werr := wire.WriteFrame(bw, wire.TError, wire.EncodeError(errorCode(err), err.Error())); werr == nil {
			bw.Flush()
		}
	}
	sendRedirect := func() {
		rt.metrics.redirects.Inc()
		if werr := wire.WriteFrame(bw, wire.TRedirect, nil); werr == nil {
			bw.Flush()
		}
	}

	t, payload, err := wire.ReadFrame(br)
	if err != nil {
		return
	}
	if t != wire.THello {
		sendErr(fmt.Errorf("fleet: expected hello frame, got %v", t))
		return
	}
	var hello helloPayload
	if err := json.Unmarshal(payload, &hello); err != nil {
		sendErr(fmt.Errorf("fleet: bad hello payload: %w", err))
		return
	}
	if hello.Proto != wire.Proto {
		sendErr(fmt.Errorf("fleet: unsupported protocol version %d (want %d)", hello.Proto, wire.Proto))
		return
	}

	// Trace context: the router roots a fleet.session span, adopting the
	// client's trace when the hello carries one; backends see the router
	// span as their parent (or, with router tracing off, the client's
	// context untouched).
	remoteSC, _ := tracing.ParseTraceparent(hello.Trace)
	connSpan := rt.tracer.Root("fleet.session", remoteSC)
	connSpan.SetAttr("remote", conn.RemoteAddr().String())
	defer connSpan.End()
	if connSpan != nil {
		ctx = tracing.ContextWith(ctx, connSpan.Context())
	} else if remoteSC.Valid() {
		ctx = tracing.ContextWith(ctx, remoteSC)
	}

	var (
		sess Session
		id   string
		fed  uint64
	)
	if hello.Resume != "" {
		id = hello.Resume
		connSpan.SetAttr("resume", id)
		sess, fed, _, err = rt.routeResume(ctx, id)
	} else {
		id = hello.SessionID
		if id == "" {
			id = NewSessionID()
		}
		sess, _, err = rt.routeOpen(ctx, id, hello.Session)
	}
	if err != nil {
		connSpan.SetError(err)
		sendErr(err)
		return
	}
	connSpan.SetAttr("session", id)

	ack, _ := json.Marshal(ackPayload{Session: id, Fed: fed})
	if err := wire.WriteFrame(bw, wire.TAck, ack); err != nil {
		sess.Release()
		return
	}
	if err := bw.Flush(); err != nil {
		sess.Release()
		return
	}

	for {
		t, payload, err := wire.ReadFrame(br)
		if err != nil {
			sess.Release() // client vanished; durable sessions stay resumable
			return
		}
		switch t {
		case wire.TEvents:
			evs, err := wire.DecodeEvents(payload)
			if err != nil {
				sess.Release()
				sendErr(err)
				return
			}
			if err := sess.Feed(evs); err != nil {
				if isHandoffError(err) {
					sess.Release()
					sendRedirect()
					return
				}
				sess.Release()
				sendErr(err)
				return
			}
		case wire.TFlush:
			// Per-flush trace: parent under the client's flush span when the
			// frame carries one, else the session context; the backend sees
			// the router's fleet.flush span (or, with router tracing off,
			// the client's context passed through).
			parent := tracing.FromContext(ctx)
			if len(payload) > 0 {
				var fp flushPayload
				if json.Unmarshal(payload, &fp) == nil {
					if fsc, ok := tracing.ParseTraceparent(fp.Trace); ok {
						parent = fsc
					}
				}
			}
			var fsp *tracing.Span
			downstream := parent
			if rt.tracer != nil {
				fsp = rt.tracer.Child("fleet.flush", parent)
				fsp.SetAttr("session", id)
				downstream = fsp.Context()
			}
			if ft, ok := sess.(flushTraced); ok && downstream.Valid() {
				ft.SetFlushContext(downstream)
			}
			n, err := sess.Flush()
			fsp.SetError(err)
			fsp.End()
			if err != nil {
				if isHandoffError(err) {
					sess.Release()
					sendRedirect()
					return
				}
				sess.Release()
				sendErr(err)
				return
			}
			fa, _ := json.Marshal(flushAckPayload{Fed: n})
			if err := wire.WriteFrame(bw, wire.TFlushAck, fa); err != nil {
				sess.Release()
				return
			}
			if err := bw.Flush(); err != nil {
				sess.Release()
				return
			}
		case wire.TEOF:
			doc, err := sess.Close()
			if err != nil {
				if isHandoffError(err) {
					sendRedirect()
					return
				}
				sendErr(err)
				return
			}
			if err := wire.WriteFrame(bw, wire.TReport, doc); err != nil {
				sendErr(fmt.Errorf("fleet: sending report for %s: %w", id, err))
				return
			}
			bw.Flush()
			return
		default:
			sess.Release()
			sendErr(fmt.Errorf("fleet: unexpected %v frame mid-session", t))
			return
		}
	}
}
