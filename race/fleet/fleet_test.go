package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"net"
	"testing"
	"time"

	"repro/internal/workload"
	"repro/race"
	"repro/race/server"
)

// batchReport computes the in-process truth: one engine over the whole
// trace, canonical JSON.
func batchReport(t *testing.T, tr *race.Trace, names []string) []byte {
	t.Helper()
	eng, err := race.NewEngine(race.WithAnalysisNames(names...))
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.FeedTrace(tr); err != nil {
		t.Fatal(err)
	}
	rep, err := eng.Close()
	if err != nil {
		t.Fatal(err)
	}
	doc, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	return doc
}

// startFleet boots n durable local backends behind a router with fast
// probes and a TCP wire listener, returning the router, the backends, and
// the router's wire address.
func startFleet(t *testing.T, n int) (*Router, []*Local, string) {
	t.Helper()
	var backends []Backend
	var locals []*Local
	for i := 0; i < n; i++ {
		srv := server.New(server.Config{DataDir: t.TempDir(), IdleTimeout: -1})
		b := NewLocal(string(rune('a'+i))+"-backend", srv)
		locals = append(locals, b)
		backends = append(backends, b)
	}
	rt, err := New(backends, Options{ProbeInterval: 50 * time.Millisecond, ProbeThreshold: 2})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Close)
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { lis.Close() })
	go rt.ServeTCP(lis)
	return rt, locals, lis.Addr().String()
}

// holderOf finds which backend currently holds the live session.
func holderOf(t *testing.T, locals []*Local, id string) (*Local, *Local) {
	t.Helper()
	var holder, other *Local
	for _, b := range locals {
		if _, ok := b.Server().Session(id); ok {
			holder = b
		} else {
			other = b
		}
	}
	if holder == nil {
		t.Fatalf("session %s not live on any backend", id)
	}
	return holder, other
}

// feedReliable pushes tr.Events[from:to] through the reliable session in
// fixed chunks.
func feedReliable(t *testing.T, sess *server.ReliableSession, tr *race.Trace, from, to, chunk int) {
	t.Helper()
	for off := from; off < to; off += chunk {
		end := min(off+chunk, to)
		if err := sess.FeedBatch(tr.Events[off:end]); err != nil {
			t.Fatalf("feeding [%d:%d): %v", off, end, err)
		}
	}
}

// TestMigrationMidStreamConformanceAllCells is the tentpole's migration
// acceptance: a session explicitly migrated between backends mid-stream —
// while its client keeps streaming through the router — reports
// byte-identical to uninterrupted batch Analyze, with the full 15-cell
// Table 1 fan-out in one session.
func TestMigrationMidStreamConformanceAllCells(t *testing.T) {
	names := race.Detectors()
	if len(names) != 15 {
		t.Fatalf("registry has %d analyses, want the paper's 15 Table 1 cells", len(names))
	}
	p, _ := workload.ProgramByName("avrora")
	tr := p.Generate(40000, 3)
	want := batchReport(t, tr, names)

	rt, locals, addr := startFleet(t, 2)
	ctx := context.Background()

	sess, err := server.OpenReliable(ctx, addr, server.SessionConfig{Analyses: names},
		server.WithRetry(server.RetryPolicy{MaxAttempts: 10, BaseDelay: 10 * time.Millisecond, MaxDelay: 100 * time.Millisecond}))
	if err != nil {
		t.Fatal(err)
	}
	id := sess.ID()
	if id == "" || id[0] != 'f' {
		t.Fatalf("router-assigned id %q is not a fleet id", id)
	}

	mid := len(tr.Events) / 2
	feedReliable(t, sess, tr, 0, mid, 1003)
	if err := sess.Flush(); err != nil {
		t.Fatal(err)
	}

	holder, other := holderOf(t, locals, id)
	if err := rt.MigrateSession(ctx, id, other.Name()); err != nil {
		t.Fatalf("migrating %s from %s to %s: %v", id, holder.Name(), other.Name(), err)
	}
	if _, ok := holder.Server().Session(id); ok {
		t.Fatalf("session %s still live on migration source %s", id, holder.Name())
	}
	if _, ok := other.Server().Session(id); !ok {
		t.Fatalf("session %s not live on migration target %s", id, other.Name())
	}

	// The client rides out the handoff transparently: its next ops hit the
	// router's redirect (or the torn connection), reconnect, resume at the
	// acked offset, and replay the unacknowledged suffix.
	feedReliable(t, sess, tr, mid, len(tr.Events), 997)
	got, err := sess.CloseJSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("migrated report differs from uninterrupted batch Analyze\n--- migrated ---\n%s\n--- batch ---\n%s", got, want)
	}

	m := rt.Snapshot()
	if m.MigrationsCompleted == 0 || m.MigrationsFailed != 0 {
		t.Errorf("metrics after migration: %+v", m)
	}
}

// TestCrashMigrationConformanceAllCells: the source backend is hard-killed
// mid-stream (simulated SIGKILL — no suspend, no warning). The client's
// resume routes to the survivor, which recovers the session from the dead
// backend's journal; the final report must still be byte-identical to
// batch Analyze across all 15 cells. A crash costs a journal replay, not
// data.
func TestCrashMigrationConformanceAllCells(t *testing.T) {
	names := race.Detectors()
	if len(names) != 15 {
		t.Fatalf("registry has %d analyses, want 15", len(names))
	}
	tr := workload.Channels(workload.ChannelConfig{
		Seed: 7, Threads: 6, Chans: 4, MaxCap: 3, Locks: 2, Vars: 6, Events: 3000,
	})
	want := batchReport(t, tr, names)

	rt, locals, addr := startFleet(t, 2)
	ctx := context.Background()

	sess, err := server.OpenReliable(ctx, addr, server.SessionConfig{Analyses: names},
		server.WithRetry(server.RetryPolicy{MaxAttempts: 10, BaseDelay: 10 * time.Millisecond, MaxDelay: 100 * time.Millisecond}))
	if err != nil {
		t.Fatal(err)
	}
	id := sess.ID()

	mid := len(tr.Events) / 2
	feedReliable(t, sess, tr, 0, mid, 251)
	if err := sess.Flush(); err != nil {
		t.Fatal(err)
	}
	if got := sess.Acked(); got != uint64(mid) {
		t.Fatalf("flush acked %d events, want %d", got, mid)
	}

	holder, survivor := holderOf(t, locals, id)
	holder.Kill()

	feedReliable(t, sess, tr, mid, len(tr.Events), 239)
	got, err := sess.CloseJSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("crash-migrated report differs from batch Analyze\n--- migrated ---\n%s\n--- batch ---\n%s", got, want)
	}
	if _, ok := survivor.Server().Session(id); ok {
		// Close ended it; it should be finished, not live.
		t.Errorf("session %s still streaming on survivor after close", id)
	}

	m := rt.Snapshot()
	if m.MigrationsCompleted == 0 {
		t.Errorf("no completed migration recorded: %+v", m)
	}
	if st := m.Backends[holder.Name()]; st.Status != "down" {
		t.Errorf("killed backend status %q, want down", st.Status)
	}
}

// TestDrainedBackendResumeMigrates: a durable session whose client
// disconnects, whose backend is then drained, must — on resume through the
// router — be migrated off the draining backend and complete elsewhere
// with a byte-identical report. Draining means "no new sessions AND shed
// resumable ones", while in-flight connections elsewhere are untouched.
func TestDrainedBackendResumeMigrates(t *testing.T) {
	names := []string{"ST-WDC", "FTO-HB"}
	tr := workload.Channels(workload.ChannelConfig{
		Seed: 11, Threads: 5, Chans: 3, MaxCap: 2, Locks: 2, Vars: 5, Events: 3000,
	})
	want := batchReport(t, tr, names)

	rt, locals, addr := startFleet(t, 2)
	ctx := context.Background()

	c, err := server.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	sess, err := c.Open(server.SessionConfig{Analyses: names})
	if err != nil {
		t.Fatal(err)
	}
	id := sess.ID()
	mid := len(tr.Events) / 2
	if err := sess.FeedBatch(tr.Events[:mid]); err != nil {
		t.Fatal(err)
	}
	if err := sess.Flush(); err != nil {
		t.Fatal(err)
	}
	c.Close() // drop the connection; the durable session stays resumable

	holder, other := holderOf(t, locals, id)
	if err := holder.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	rt.health.observe(holder.Name(), ErrBackendDraining)

	// New sessions avoid the draining backend entirely.
	c2, err := server.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	fresh, err := c2.Open(server.SessionConfig{Analyses: names})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := holder.Server().Session(fresh.ID()); ok {
		t.Fatalf("fresh session landed on draining backend %s", holder.Name())
	}

	// Resuming the old session through the router migrates it off the
	// draining backend.
	c3, err := server.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c3.Close()
	resumed, fed, err := c3.Resume(ctx, id)
	if err != nil {
		t.Fatal(err)
	}
	if fed < uint64(mid) || fed > uint64(len(tr.Events)) {
		t.Fatalf("resume offset %d outside [%d, %d]", fed, mid, len(tr.Events))
	}
	if _, ok := holder.Server().Session(id); ok {
		t.Fatalf("resumed session %s still lives on draining backend", id)
	}
	if _, ok := other.Server().Session(id); !ok {
		t.Fatalf("resumed session %s not on the routable backend", id)
	}
	if err := resumed.FeedBatch(tr.Events[fed:]); err != nil {
		t.Fatal(err)
	}
	got, err := resumed.CloseJSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("drain-migrated report differs from batch Analyze")
	}
}

// TestRouterSpreadsSessions: with healthy backends the hash ring actually
// uses the fleet — many sessions land on more than one backend, and the
// routing metrics account for every placement.
func TestRouterSpreadsSessions(t *testing.T) {
	rt, locals, addr := startFleet(t, 2)
	const n = 16
	for i := 0; i < n; i++ {
		c, err := server.Dial(addr)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := c.Open(server.SessionConfig{Analyses: []string{"FTO-HB"}}); err != nil {
			t.Fatal(err)
		}
		c.Close()
	}
	m := rt.Snapshot()
	var routed uint64
	spread := 0
	for _, b := range locals {
		c := m.Backends[b.Name()].SessionsRouted
		routed += c
		if c > 0 {
			spread++
		}
	}
	if routed != n {
		t.Errorf("metrics count %d sessions routed, want %d", routed, n)
	}
	if spread < 2 {
		t.Errorf("all %d sessions landed on one backend; ring not spreading", n)
	}
}
