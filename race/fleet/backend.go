// Package fleet scales raced horizontally: a stateless ingress router
// (cmd/racefleet) accepts the existing wire protocol and HTTP API, routes
// each session to one of N raced backends by consistent hashing on the
// session id, health-checks the backends, and rebalances by migrating
// sessions through their durable racelog journals.
//
// The capacity model is additive because sessions are journaled, not
// sticky: a backend crash costs a journal replay on another backend, never
// data — every event a client saw acknowledged at a flush barrier is synced
// in the session's journal, and the journal (plus session.json) is the
// whole session. Migration is therefore just: seal the journal on the
// source (server.Session suspend), copy the session directory to the
// target's data dir, recover it there, and let the client re-resume through
// the router at the acked offset.
//
// The Backend seam has two implementations so the whole fleet is testable
// in one process: Local wraps a *server.Server directly (deterministic
// tests, simulated crashes via Kill), Remote speaks the wire protocol and
// HTTP to a real raced.
package fleet

import (
	"context"
	"errors"
	"net/http"

	"repro/internal/obs/tracing"
	"repro/race"
	"repro/race/server"
)

// Errors surfaced by backends and routing.
var (
	// ErrBackendDraining marks a backend that answers health probes but
	// has been told to stop admitting sessions: reachable (existing
	// sessions keep streaming, admin calls work) but not routable.
	ErrBackendDraining = errors.New("fleet: backend is draining")
	// ErrNoBackends means no routable backend remains for an operation.
	ErrNoBackends = errors.New("fleet: no routable backends")
	// ErrBackendDown is a simulated-crash (Local.Kill) or probe-declared
	// dead backend refusing an operation.
	ErrBackendDown = errors.New("fleet: backend is down")
)

// Backend is one raced instance as the router sees it. Open/Resume carry
// the streaming path (the router's TCP proxy); Suspend/RecoverSession/
// Drain are the migration control surface; Proxy forwards one HTTP API
// request. DataDir is the backend's storage root as visible to the router —
// migration copies session directories between backend data dirs, so a
// fleet shares a filesystem (one host, NFS, or a mounted volume).
type Backend interface {
	Name() string
	DataDir() string

	// Healthz probes readiness: nil (routable), ErrBackendDraining
	// (reachable, not routable), or any other error (unreachable).
	Healthz(ctx context.Context) error

	// Open starts a fresh session under the router-chosen id.
	Open(ctx context.Context, id string, cfg server.SessionConfig) (Session, error)
	// Resume re-attaches to a session the backend knows (live or journal-
	// recovered), returning the event offset already accepted.
	Resume(ctx context.Context, id string) (Session, uint64, error)

	// Suspend seals a live durable session's journal and frees its slot,
	// returning the journaled offset — the migration source half.
	Suspend(ctx context.Context, id string) (uint64, error)
	// RecoverSession loads a session directory that appeared under the
	// backend's data dir — the migration target half.
	RecoverSession(ctx context.Context, id string) error
	// Drain stops the backend from admitting new sessions.
	Drain(ctx context.Context) error

	// Sessions lists the backend's live and finished sessions.
	Sessions(ctx context.Context) ([]server.SessionStatus, error)
	// Proxy forwards one HTTP API request to the backend.
	Proxy(w http.ResponseWriter, r *http.Request)
}

// Session is one streaming session held open through a backend. Close
// returns the backend's canonical report JSON verbatim, so a report is
// byte-identical whether the session stayed put or migrated. Release drops
// the attachment without ending the session (durable sessions stay
// resumable).
type Session interface {
	Feed(evs []race.Event) error
	Flush() (uint64, error)
	Close() ([]byte, error)
	Release()
}

// flushTraced is the optional Session extension for per-flush trace
// propagation: SetFlushContext hands the router's flush span (or the
// client's, passed through) to the backend, parenting the backend's
// journal-fsync work under it. Sessions without it simply don't thread
// flush traces — the Session seam stays minimal for other implementations.
type flushTraced interface {
	SetFlushContext(sc tracing.SpanContext)
}
