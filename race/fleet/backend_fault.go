package fleet

import (
	"context"
	"net/http"

	"repro/internal/obs/tracing"
	"repro/race"
	"repro/race/server"
)

// FaultBackend decorates a Backend with an injected availability gate — the
// fleet-level fault seam. Every operation (and every session operation on
// sessions it vended) first consults gate(op) and fails with the gate's
// error when non-nil, so a deterministic schedule (fault.Gate driving the
// gate) produces backend flapping and partial partitions without touching
// the wrapped backend. The op strings name the Backend method in lower
// case ("open", "resume", "healthz", …; session ops are "feed", "flush",
// "close"), letting a gate partition selectively — e.g. fail the wire ops
// while probes still pass, the nastiest flavor of partial partition.
type FaultBackend struct {
	Backend
	gate func(op string) error
}

// NewFaultBackend wraps b so every operation consults gate first.
func NewFaultBackend(b Backend, gate func(op string) error) *FaultBackend {
	return &FaultBackend{Backend: b, gate: gate}
}

func (b *FaultBackend) Healthz(ctx context.Context) error {
	if err := b.gate("healthz"); err != nil {
		return err
	}
	return b.Backend.Healthz(ctx)
}

func (b *FaultBackend) Open(ctx context.Context, id string, cfg server.SessionConfig) (Session, error) {
	if err := b.gate("open"); err != nil {
		return nil, err
	}
	sess, err := b.Backend.Open(ctx, id, cfg)
	if err != nil {
		return nil, err
	}
	return &faultSession{Session: sess, gate: b.gate}, nil
}

func (b *FaultBackend) Resume(ctx context.Context, id string) (Session, uint64, error) {
	if err := b.gate("resume"); err != nil {
		return nil, 0, err
	}
	sess, fed, err := b.Backend.Resume(ctx, id)
	if err != nil {
		return nil, 0, err
	}
	return &faultSession{Session: sess, gate: b.gate}, fed, nil
}

func (b *FaultBackend) Suspend(ctx context.Context, id string) (uint64, error) {
	if err := b.gate("suspend"); err != nil {
		return 0, err
	}
	return b.Backend.Suspend(ctx, id)
}

func (b *FaultBackend) RecoverSession(ctx context.Context, id string) error {
	if err := b.gate("recover"); err != nil {
		return err
	}
	return b.Backend.RecoverSession(ctx, id)
}

func (b *FaultBackend) Drain(ctx context.Context) error {
	if err := b.gate("drain"); err != nil {
		return err
	}
	return b.Backend.Drain(ctx)
}

func (b *FaultBackend) Sessions(ctx context.Context) ([]server.SessionStatus, error) {
	if err := b.gate("sessions"); err != nil {
		return nil, err
	}
	return b.Backend.Sessions(ctx)
}

func (b *FaultBackend) Proxy(w http.ResponseWriter, r *http.Request) {
	if err := b.gate("proxy"); err != nil {
		http.Error(w, err.Error(), http.StatusBadGateway)
		return
	}
	b.Backend.Proxy(w, r)
}

// faultSession gates the per-session stream ops, so a partition that opens
// mid-stream severs live sessions the way a dead backend would.
type faultSession struct {
	Session
	gate func(op string) error
}

// SetFlushContext forwards flush trace context to the wrapped session when
// it participates (interface embedding does not promote optional methods).
func (s *faultSession) SetFlushContext(sc tracing.SpanContext) {
	if ft, ok := s.Session.(flushTraced); ok {
		ft.SetFlushContext(sc)
	}
}

func (s *faultSession) Feed(evs []race.Event) error {
	if err := s.gate("feed"); err != nil {
		return err
	}
	return s.Session.Feed(evs)
}

func (s *faultSession) Flush() (uint64, error) {
	if err := s.gate("flush"); err != nil {
		return 0, err
	}
	return s.Session.Flush()
}

func (s *faultSession) Close() ([]byte, error) {
	if err := s.gate("close"); err != nil {
		return nil, err
	}
	return s.Session.Close()
}
