package fleet

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sync/atomic"

	"repro/internal/obs/tracing"
	"repro/race"
	"repro/race/server"
)

// Local adapts an in-process *server.Server to the Backend seam — the fast,
// deterministic implementation for tests and single-binary deployments.
// Kill simulates a backend crash: every subsequent operation (including
// in-flight sessions) fails as unreachable, while whatever the server had
// journaled stays on disk, exactly like a SIGKILL'd raced.
type Local struct {
	name    string
	srv     *server.Server
	handler http.Handler
	killed  atomic.Bool
}

// NewLocal wraps srv as a named backend.
func NewLocal(name string, srv *server.Server) *Local {
	return &Local{name: name, srv: srv, handler: srv.Handler()}
}

// Kill simulates a hard crash. The wrapped server object stays alive (the
// test still owns it) but the backend refuses everything from now on.
func (b *Local) Kill() { b.killed.Store(true) }

// Server returns the wrapped server (tests reach through for assertions).
func (b *Local) Server() *server.Server { return b.srv }

func (b *Local) Name() string    { return b.name }
func (b *Local) DataDir() string { return b.srv.DataDir() }

func (b *Local) down() error {
	if b.killed.Load() {
		return fmt.Errorf("%w: %s (killed)", ErrBackendDown, b.name)
	}
	return nil
}

func (b *Local) Healthz(context.Context) error {
	if err := b.down(); err != nil {
		return err
	}
	if b.srv.Draining() {
		return ErrBackendDraining
	}
	return nil
}

func (b *Local) Open(ctx context.Context, id string, cfg server.SessionConfig) (Session, error) {
	if err := b.down(); err != nil {
		return nil, err
	}
	sess, err := b.srv.OpenSessionWithID(id, cfg)
	if err != nil {
		return nil, err
	}
	if err := sess.Attach(); err != nil {
		return nil, err
	}
	if sc := tracing.FromContext(ctx); sc.Valid() {
		sess.SetTraceContext(sc)
	}
	return &localSession{b: b, sess: sess}, nil
}

func (b *Local) Resume(ctx context.Context, id string) (Session, uint64, error) {
	if err := b.down(); err != nil {
		return nil, 0, err
	}
	sess, ok := b.srv.Session(id)
	if !ok {
		return nil, 0, fmt.Errorf("%w: %s", server.ErrUnknown, id)
	}
	if err := sess.Attach(); err != nil {
		return nil, 0, err
	}
	if err := sess.Err(); err != nil {
		sess.Detach()
		return nil, 0, err
	}
	if sc := tracing.FromContext(ctx); sc.Valid() {
		sess.SetTraceContext(sc)
	}
	return &localSession{b: b, sess: sess}, sess.Enqueued(), nil
}

func (b *Local) Suspend(_ context.Context, id string) (uint64, error) {
	if err := b.down(); err != nil {
		return 0, err
	}
	return b.srv.SuspendSession(id)
}

func (b *Local) RecoverSession(ctx context.Context, id string) error {
	if err := b.down(); err != nil {
		return err
	}
	return b.srv.RecoverSessionCtx(ctx, id)
}

func (b *Local) Drain(context.Context) error {
	if err := b.down(); err != nil {
		return err
	}
	b.srv.Drain()
	return nil
}

func (b *Local) Sessions(context.Context) ([]server.SessionStatus, error) {
	if err := b.down(); err != nil {
		return nil, err
	}
	return b.srv.Sessions(), nil
}

func (b *Local) Proxy(w http.ResponseWriter, r *http.Request) {
	if err := b.down(); err != nil {
		http.Error(w, err.Error(), http.StatusBadGateway)
		return
	}
	b.handler.ServeHTTP(w, r)
}

// localSession drives a *server.Session directly.
type localSession struct {
	b       *Local
	sess    *server.Session
	flushSC tracing.SpanContext // next Flush's trace parent (SetFlushContext)
}

// SetFlushContext parents the next Flush's server-side spans under sc.
func (s *localSession) SetFlushContext(sc tracing.SpanContext) { s.flushSC = sc }

func (s *localSession) Feed(evs []race.Event) error {
	if err := s.b.down(); err != nil {
		return err
	}
	return s.sess.Feed(evs)
}

func (s *localSession) Flush() (uint64, error) {
	if err := s.b.down(); err != nil {
		return 0, err
	}
	sc := s.flushSC
	s.flushSC = tracing.SpanContext{}
	if err := s.sess.FlushCtx(sc); err != nil {
		return 0, err
	}
	return s.sess.Fed(), nil
}

func (s *localSession) Close() ([]byte, error) {
	if err := s.b.down(); err != nil {
		return nil, err
	}
	defer s.sess.Detach()
	rep, err := s.sess.Close()
	if err != nil {
		return nil, err
	}
	// Matches the raced TCP/HTTP report encoding, keeping local and remote
	// backends byte-transparent.
	return json.Marshal(rep)
}

func (s *localSession) Release() { s.sess.Detach() }
