package fleet

import (
	"hash/fnv"
	"sort"
	"strconv"
)

// ring is a consistent-hash ring over backend names. Each backend owns
// vnodes points placed by FNV-64a of "name#i"; a key routes to the first
// point clockwise of its own hash. The placement is a pure function of the
// backend names and vnode count, so every router instance — and every
// restart — computes the same assignment: the ring is the fleet's only
// routing "state", and it is stateless.
//
// Virtual nodes smooth the load split (with v points per backend the
// per-backend share concentrates around 1/n) and bound disruption: removing
// a backend reassigns only the keys in its own arcs, never shuffles keys
// between surviving backends.
type ring struct {
	names  []string
	points []ringPoint // sorted by hash
}

type ringPoint struct {
	hash uint64
	idx  int // index into names
}

// DefaultVNodes is the virtual-node count per backend when unconfigured.
const DefaultVNodes = 64

func newRing(names []string, vnodes int) *ring {
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	r := &ring{names: names, points: make([]ringPoint, 0, len(names)*vnodes)}
	for i, name := range names {
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, ringPoint{hash: ringHash(name + "#" + strconv.Itoa(v)), idx: i})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		a, b := r.points[i], r.points[j]
		if a.hash != b.hash {
			return a.hash < b.hash
		}
		return r.names[a.idx] < r.names[b.idx] // deterministic tie-break
	})
	return r
}

func ringHash(s string) uint64 {
	f := fnv.New64a()
	f.Write([]byte(s))
	h := f.Sum64()
	// FNV-1a's final multiply barely reaches the top bits for short keys,
	// so points for "name#0".."name#63" cluster and arcs go lopsided.
	// A splitmix64 finalizer avalanches every bit; still deterministic.
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}

// sequence returns the backends for key in preference order: the key's
// owner first, then each distinct backend encountered walking clockwise —
// the deterministic failover order when owners are down or full.
func (r *ring) sequence(key string) []string {
	if len(r.points) == 0 {
		return nil
	}
	h := ringHash(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	out := make([]string, 0, len(r.names))
	seen := make([]bool, len(r.names))
	for i := 0; i < len(r.points) && len(out) < len(r.names); i++ {
		p := r.points[(start+i)%len(r.points)]
		if !seen[p.idx] {
			seen[p.idx] = true
			out = append(out, r.names[p.idx])
		}
	}
	return out
}

// owner returns the first backend in key's sequence.
func (r *ring) owner(key string) string {
	seq := r.sequence(key)
	if len(seq) == 0 {
		return ""
	}
	return seq[0]
}
