package fleet

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"time"
)

// Backend health states as the router's prober sees them.
const (
	stateUp       int32 = iota // routable: takes new sessions
	stateDraining              // reachable (admin, existing sessions) but not routable
	stateDown                  // failed ProbeThreshold consecutive probes
)

func stateName(s int32) string {
	switch s {
	case stateUp:
		return "up"
	case stateDraining:
		return "draining"
	default:
		return "down"
	}
}

// DefaultProbeInterval and DefaultProbeThreshold govern health checking
// when unconfigured: a probe every 2s, down after 2 consecutive failures.
const (
	DefaultProbeInterval  = 2 * time.Second
	DefaultProbeThreshold = 2
)

// Flap damping: a backend that failed its way down must string together
// threshold consecutive good probes before it takes traffic again — and a
// backend that has bounced recently (flapTrips recoveries inside
// flapWindow) must produce flapPenalty times that, so a flapping backend
// converges to a stable "down" instead of oscillating sessions on and off
// the ring.
const (
	flapWindow  = time.Minute
	flapTrips   = 2
	flapPenalty = 4
)

// probeRecord is one backend's health as maintained by the monitor.
type probeRecord struct {
	state       atomic.Int32
	consecFails atomic.Int32
	consecOKs   atomic.Int32 // good probes since going down

	mu         sync.Mutex
	recoveries []time.Time // down→up transitions inside flapWindow
}

// noteRecovery records a down→up transition for flap tracking.
func (rec *probeRecord) noteRecovery(now time.Time) {
	rec.mu.Lock()
	defer rec.mu.Unlock()
	rec.recoveries = append(rec.recoveries, now)
	rec.trimLocked(now)
}

// flapping reports whether the backend has recovered repeatedly within the
// damping window.
func (rec *probeRecord) flapping(now time.Time) bool {
	rec.mu.Lock()
	defer rec.mu.Unlock()
	rec.trimLocked(now)
	return len(rec.recoveries) >= flapTrips
}

func (rec *probeRecord) trimLocked(now time.Time) {
	cut := 0
	for cut < len(rec.recoveries) && now.Sub(rec.recoveries[cut]) > flapWindow {
		cut++
	}
	rec.recoveries = rec.recoveries[cut:]
}

// healthMonitor probes every backend's Healthz on a fixed interval. A
// failed RPC also lets the router mark a backend down immediately
// (markDown) instead of waiting out the probe threshold.
type healthMonitor struct {
	interval  time.Duration
	threshold int
	records   map[string]*probeRecord

	// onProbe, when set before start, observes every probe's RTT and
	// outcome (metrics). Synthetic state changes — markDown, admin
	// drain — do not pass through it.
	onProbe func(name string, rtt time.Duration, err error)

	// onRecover, when set before start, observes every down→up transition
	// (the flap metric).
	onRecover func(name string)

	stop chan struct{}
	once sync.Once
	wg   sync.WaitGroup
}

func newHealthMonitor(names []string, interval time.Duration, threshold int) *healthMonitor {
	if interval <= 0 {
		interval = DefaultProbeInterval
	}
	if threshold <= 0 {
		threshold = DefaultProbeThreshold
	}
	h := &healthMonitor{
		interval:  interval,
		threshold: threshold,
		records:   make(map[string]*probeRecord, len(names)),
		stop:      make(chan struct{}),
	}
	for _, name := range names {
		h.records[name] = &probeRecord{} // optimistically up until probed
	}
	return h
}

// start launches one prober goroutine per backend. probe runs the actual
// health RPC (bounded by ctx).
func (h *healthMonitor) start(probe func(ctx context.Context, name string) error) {
	for name := range h.records {
		h.wg.Add(1)
		go func(name string) {
			defer h.wg.Done()
			t := time.NewTicker(h.interval)
			defer t.Stop()
			for {
				h.observe(name, h.runProbe(probe, name))
				select {
				case <-t.C:
				case <-h.stop:
					return
				}
			}
		}(name)
	}
}

func (h *healthMonitor) runProbe(probe func(ctx context.Context, name string) error, name string) error {
	ctx, cancel := context.WithTimeout(context.Background(), h.interval)
	defer cancel()
	t0 := time.Now()
	err := probe(ctx, name)
	if h.onProbe != nil {
		h.onProbe(name, time.Since(t0), err)
	}
	return err
}

// observe folds one probe result into the backend's state machine. A down
// backend does not recover on a single good probe: it must earn its way
// back with consecutive successes (see the flap-damping constants), so a
// backend bouncing at probe frequency sheds traffic instead of thrashing it.
func (h *healthMonitor) observe(name string, err error) {
	rec := h.records[name]
	switch {
	case err == nil:
		rec.consecFails.Store(0)
		if rec.state.Load() != stateDown {
			rec.consecOKs.Store(0)
			rec.state.Store(stateUp)
			return
		}
		now := time.Now()
		need := int32(h.threshold)
		if rec.flapping(now) {
			need *= flapPenalty
		}
		if rec.consecOKs.Add(1) >= need {
			rec.consecOKs.Store(0)
			rec.state.Store(stateUp)
			rec.noteRecovery(now)
			if h.onRecover != nil {
				h.onRecover(name)
			}
		}
	case errors.Is(err, ErrBackendDraining):
		rec.consecFails.Store(0)
		rec.consecOKs.Store(0)
		rec.state.Store(stateDraining)
	default:
		rec.consecOKs.Store(0)
		if int(rec.consecFails.Add(1)) >= h.threshold {
			rec.state.Store(stateDown)
		}
	}
}

func (h *healthMonitor) close() {
	h.once.Do(func() { close(h.stop) })
	h.wg.Wait()
}

// routable reports whether new sessions may land on the backend.
func (h *healthMonitor) routable(name string) bool {
	rec, ok := h.records[name]
	return ok && rec.state.Load() == stateUp
}

// reachable reports whether the backend answers at all (up or draining) —
// existing sessions and admin operations may still target it.
func (h *healthMonitor) reachable(name string) bool {
	rec, ok := h.records[name]
	return ok && rec.state.Load() != stateDown
}

// markDown records an observed hard failure without waiting for probes.
func (h *healthMonitor) markDown(name string) {
	if rec, ok := h.records[name]; ok {
		rec.state.Store(stateDown)
		rec.consecFails.Store(int32(h.threshold))
		rec.consecOKs.Store(0)
	}
}

func (h *healthMonitor) status(name string) string {
	rec, ok := h.records[name]
	if !ok {
		return "unknown"
	}
	return stateName(rec.state.Load())
}
