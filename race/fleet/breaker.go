package fleet

import (
	"errors"
	"sync"
	"time"
)

// ErrCircuitOpen is the fast-fail a tripped backend circuit returns: the
// backend accumulated too many unreachable-class failures and calls to it
// are short-circuited until the cooldown expires. It classifies as
// unreachable, so routing fails over to the next ring arc exactly as if
// the dial itself had been refused.
var ErrCircuitOpen = errors.New("fleet: backend circuit open")

// DefaultBreakerThreshold and DefaultBreakerCooldown govern the per-backend
// circuit breakers when unconfigured: three consecutive unreachable-class
// failures open a circuit, and an open circuit admits a single half-open
// trial every 2s.
const (
	DefaultBreakerThreshold = 3
	DefaultBreakerCooldown  = 2 * time.Second
)

const (
	bkClosed   = iota // normal operation
	bkOpen            // failing fast until cooldown expires
	bkHalfOpen        // cooldown expired; one trial call in flight
)

// breaker is one backend's circuit breaker over unreachable-class RPC
// failures. It complements the health monitor: probes bound detection to
// the probe interval, while the breaker reacts to the RPCs the router is
// actually making — and, once open, spares callers the dial timeout the
// dead backend would cost. Session-level rejections (unknown session, full,
// draining) count as proof of life and close the circuit.
type breaker struct {
	threshold int
	cooldown  time.Duration

	mu       sync.Mutex
	state    int
	fails    int // consecutive unreachable-class failures while closed
	openedAt time.Time
	probing  bool // the half-open trial is in flight
}

func newBreaker(threshold int, cooldown time.Duration) *breaker {
	if threshold <= 0 {
		threshold = DefaultBreakerThreshold
	}
	if cooldown <= 0 {
		cooldown = DefaultBreakerCooldown
	}
	return &breaker{threshold: threshold, cooldown: cooldown}
}

// allow reports whether a call may proceed. While open it returns false
// until the cooldown expires, then admits exactly one trial (half-open);
// further calls fail fast until that trial's outcome is recorded.
func (b *breaker) allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case bkClosed:
		return true
	case bkOpen:
		if time.Since(b.openedAt) < b.cooldown {
			return false
		}
		b.state = bkHalfOpen
		b.probing = true
		return true
	default: // bkHalfOpen
		if b.probing {
			return false
		}
		b.probing = true
		return true
	}
}

// record folds one RPC outcome into the circuit and reports whether this
// outcome opened it (for the metric — reopening after a failed half-open
// trial counts too, since the circuit did admit traffic in between).
func (b *breaker) record(err error) (opened bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.probing = false
	if err == nil || !isUnreachable(err) {
		b.state = bkClosed
		b.fails = 0
		return false
	}
	b.fails++
	if b.state == bkHalfOpen || b.fails >= b.threshold {
		b.state = bkOpen
		b.openedAt = time.Now()
		b.fails = 0
		return true
	}
	return false
}

// breakerAllow reports whether name's circuit admits a call, counting the
// refusals it short-circuits.
func (rt *Router) breakerAllow(name string) bool {
	br := rt.breakers[name]
	if br == nil || br.allow() {
		return true
	}
	if c, ok := rt.metrics.breakerShorts[name]; ok {
		c.Inc()
	}
	return false
}

// breakerRecord folds one backend RPC outcome into name's circuit.
func (rt *Router) breakerRecord(name string, err error) {
	br := rt.breakers[name]
	if br == nil {
		return
	}
	if br.record(err) {
		if c, ok := rt.metrics.breakerOpens[name]; ok {
			c.Inc()
		}
		rt.logger.Warn("backend circuit opened", "backend", name, "err", err)
	}
}
