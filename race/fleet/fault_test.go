package fleet

import (
	"syscall"
	"testing"
	"time"

	"repro/race/server"
)

// TestBreakerStateMachine drives one breaker through its full cycle:
// closed → open after threshold unreachable failures → half-open after the
// cooldown (admitting exactly one trial) → reopened by a failed trial,
// closed by a good one.
func TestBreakerStateMachine(t *testing.T) {
	refused := syscall.ECONNREFUSED
	br := newBreaker(3, 20*time.Millisecond)

	for i := 0; i < 2; i++ {
		if !br.allow() {
			t.Fatalf("breaker refused call %d while closed", i)
		}
		if br.record(refused) {
			t.Fatalf("breaker opened after %d failures (threshold 3)", i+1)
		}
	}
	if !br.allow() {
		t.Fatal("breaker refused the third call while still closed")
	}
	if !br.record(refused) {
		t.Fatal("breaker did not open at the threshold")
	}
	if br.allow() {
		t.Fatal("open breaker admitted a call before the cooldown")
	}

	time.Sleep(25 * time.Millisecond)
	if !br.allow() {
		t.Fatal("breaker refused the half-open trial after the cooldown")
	}
	if br.allow() {
		t.Fatal("half-open breaker admitted a second concurrent call")
	}
	if !br.record(refused) {
		t.Fatal("failed half-open trial did not reopen the breaker")
	}
	if br.allow() {
		t.Fatal("reopened breaker admitted a call before the cooldown")
	}

	time.Sleep(25 * time.Millisecond)
	if !br.allow() {
		t.Fatal("breaker refused the second half-open trial")
	}
	if br.record(nil) {
		t.Fatal("successful trial reported as an open transition")
	}
	if !br.allow() {
		t.Fatal("breaker not closed after a successful trial")
	}

	// Session-level rejections are proof of life, not unreachability.
	br.record(refused)
	br.record(refused)
	if br.record(server.ErrServerFull) {
		t.Fatal("a session-level rejection tripped the breaker")
	}
	if !br.allow() {
		t.Fatal("breaker open after a session-level rejection reset it")
	}
}

// TestHealthFlapDamping: a down backend does not return to rotation on a
// single good probe — it must earn threshold consecutive successes, a
// failure in between resets the streak, and the recovery fires onRecover.
func TestHealthFlapDamping(t *testing.T) {
	boom := syscall.ECONNREFUSED
	h := newHealthMonitor([]string{"b"}, time.Second, 2)
	recovered := 0
	h.onRecover = func(name string) { recovered++ }

	h.observe("b", boom)
	h.observe("b", boom)
	if h.routable("b") {
		t.Fatal("backend routable after threshold failures")
	}
	h.observe("b", nil)
	if h.routable("b") {
		t.Fatal("down backend recovered on a single good probe")
	}
	h.observe("b", boom) // flap: the streak resets
	h.observe("b", nil)
	if h.routable("b") {
		t.Fatal("recovery streak survived an interleaved failure")
	}
	h.observe("b", nil)
	if !h.routable("b") {
		t.Fatal("backend not routable after threshold consecutive successes")
	}
	if recovered != 1 {
		t.Fatalf("onRecover fired %d times, want 1", recovered)
	}

	// A recently-flapping backend pays the penalty: after another trip,
	// threshold successes are no longer enough.
	h.markDown("b")
	for i := 0; i < h.threshold; i++ {
		h.observe("b", nil)
	}
	if !h.routable("b") {
		t.Fatal("second recovery blocked (only one recent recovery; penalty needs two)")
	}
	h.markDown("b")
	for i := 0; i < h.threshold; i++ {
		h.observe("b", nil)
	}
	if h.routable("b") {
		t.Fatal("flapping backend recovered without the damping penalty")
	}
	for i := 0; i < h.threshold*(flapPenalty-1); i++ {
		h.observe("b", nil)
	}
	if !h.routable("b") {
		t.Fatal("flapping backend never recovered despite sustained good probes")
	}
}

// TestPartialPartitionRoutesAround: a backend whose wire operations fail
// while its health probes still pass (the nastiest partial partition) is
// routed around — every session lands on the healthy backend, the sick
// backend's circuit opens, and the router keeps serving throughout.
func TestPartialPartitionRoutesAround(t *testing.T) {
	srvA := server.New(server.Config{DataDir: t.TempDir(), IdleTimeout: -1})
	srvB := server.New(server.Config{DataDir: t.TempDir(), IdleTimeout: -1})
	sick := NewFaultBackend(NewLocal("a-backend", srvA), func(op string) error {
		switch op {
		case "open", "resume", "feed", "flush", "close":
			return syscall.ECONNREFUSED
		}
		return nil // probes and admin still pass
	})
	healthy := NewLocal("b-backend", srvB)

	rt, err := New([]Backend{sick, healthy}, Options{
		ProbeInterval: time.Hour, // probes out of the picture: the breaker must do the work
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()

	// Undo the markDown the first unreachable failure causes, as a healthy
	// probe round would, so the breaker is what keeps the backend skipped.
	for i := 0; i < 24; i++ {
		rt.health.observe("a-backend", nil)
		sess, b, err := rt.routeOpen(t.Context(), NewSessionID(), server.SessionConfig{Analyses: []string{"FTO-HB"}})
		if err != nil {
			t.Fatalf("open %d failed: %v", i, err)
		}
		if b.Name() != "b-backend" {
			t.Fatalf("open %d landed on the partitioned backend", i)
		}
		sess.Release()
	}
	if got := rt.metrics.breakerOpens["a-backend"].Value(); got == 0 {
		t.Error("partitioned backend's circuit never opened")
	}
	if got := rt.metrics.breakerShorts["a-backend"].Value(); got == 0 {
		t.Error("open circuit never short-circuited a call")
	}
	if got := rt.metrics.sessionsRouted["b-backend"].Value(); got != 24 {
		t.Errorf("healthy backend served %d sessions, want 24", got)
	}
}
