package fleet

import (
	"fmt"
	"testing"
)

// TestRingDeterminism: the ring is a pure function of (names, vnodes) —
// two independently built rings agree on every key, which is what lets any
// router instance (or restart) route identically with no shared state.
func TestRingDeterminism(t *testing.T) {
	names := []string{"b1", "b2", "b3"}
	r1 := newRing(names, 64)
	r2 := newRing([]string{"b1", "b2", "b3"}, 64)
	for i := 0; i < 1000; i++ {
		key := fmt.Sprintf("f%012x", i)
		s1, s2 := r1.sequence(key), r2.sequence(key)
		if len(s1) != len(s2) {
			t.Fatalf("key %s: sequence lengths differ", key)
		}
		for j := range s1 {
			if s1[j] != s2[j] {
				t.Fatalf("key %s: sequences differ: %v vs %v", key, s1, s2)
			}
		}
	}
}

// TestRingSequenceCoversAllBackends: every key's failover sequence reaches
// every backend exactly once.
func TestRingSequenceCoversAllBackends(t *testing.T) {
	names := []string{"b1", "b2", "b3", "b4"}
	r := newRing(names, 32)
	for i := 0; i < 200; i++ {
		seq := r.sequence(fmt.Sprintf("key-%d", i))
		if len(seq) != len(names) {
			t.Fatalf("sequence %v misses backends (want all %d)", seq, len(names))
		}
		seen := map[string]bool{}
		for _, n := range seq {
			if seen[n] {
				t.Fatalf("sequence %v repeats %s", seq, n)
			}
			seen[n] = true
		}
	}
}

// TestRingBalance: with virtual nodes the key split stays within sane
// bounds of uniform — no backend starves or hogs.
func TestRingBalance(t *testing.T) {
	names := []string{"b1", "b2", "b3"}
	r := newRing(names, DefaultVNodes)
	counts := map[string]int{}
	const keys = 30000
	for i := 0; i < keys; i++ {
		counts[r.owner(fmt.Sprintf("f%012x", i*7919))]++
	}
	for _, name := range names {
		share := float64(counts[name]) / keys
		if share < 0.15 || share > 0.55 {
			t.Errorf("backend %s owns %.1f%% of keys (counts %v)", name, share*100, counts)
		}
	}
}

// TestRingMinimalDisruption: removing one backend must only reassign the
// keys it owned — every other key keeps its owner. This is the property
// that makes rebalancing migrate only the dead backend's sessions.
func TestRingMinimalDisruption(t *testing.T) {
	full := newRing([]string{"b1", "b2", "b3"}, DefaultVNodes)
	without := newRing([]string{"b1", "b3"}, DefaultVNodes)
	moved, kept := 0, 0
	for i := 0; i < 5000; i++ {
		key := fmt.Sprintf("f%012x", i*104729)
		before := full.owner(key)
		after := without.owner(key)
		if before == "b2" {
			moved++
			if after == "b2" {
				t.Fatalf("key %s still routes to removed backend", key)
			}
			continue
		}
		if before != after {
			t.Fatalf("key %s moved %s → %s though its owner survived", key, before, after)
		}
		kept++
	}
	if moved == 0 || kept == 0 {
		t.Fatalf("degenerate split: moved=%d kept=%d", moved, kept)
	}
}
