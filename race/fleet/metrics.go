package fleet

import (
	"errors"
	"time"

	"repro/internal/obs"
)

// fleetMetrics is the router's slice of the obs registry. Every router owns
// one (a private registry is created when Options.Registry is nil), so the
// hot paths never nil-check.
//
// Naming follows the canonical catalog (README "Observability"): the
// fleet_ prefix, _total counters, _seconds histograms, and a backend label
// on per-backend series. The legacy /metrics JSON keys (migrations_*,
// redirects_sent, backends{...}) are derived from these same counters in
// Snapshot, so the two views can never disagree.
type fleetMetrics struct {
	migStarted   *obs.Counter
	migCompleted *obs.Counter
	migFailed    *obs.Counter
	redirects    *obs.Counter

	// Migration phase latencies: suspend (seal the source journal), copy
	// (stage + rename the session dir), recover (journal replay on the
	// target).
	migSuspend *obs.Histogram
	migCopy    *obs.Histogram
	migRecover *obs.Histogram

	// probeRTT is shared across backends (one histogram, not per-backend:
	// probe cadence is identical so per-backend quantiles add cardinality
	// without signal — outliers are attributed via fleet_probe_failures).
	probeRTT *obs.Histogram

	sessionsRouted map[string]*obs.Counter
	resumesRouted  map[string]*obs.Counter
	probeFailures  map[string]*obs.Counter

	// Failure-handling state machines: circuit-breaker trips and refusals,
	// and probe-earned recoveries (a high recovery rate is the flap signal).
	breakerOpens  map[string]*obs.Counter
	breakerShorts map[string]*obs.Counter
	recoveries    map[string]*obs.Counter
}

func newFleetMetrics(reg *obs.Registry, names []string) *fleetMetrics {
	m := &fleetMetrics{
		migStarted:   reg.Counter("fleet_migrations_started_total", "Session migrations begun (including in-place recoveries)."),
		migCompleted: reg.Counter("fleet_migrations_completed_total", "Session migrations that finished with the session recovered on its target."),
		migFailed:    reg.Counter("fleet_migrations_failed_total", "Session migrations abandoned with the source directory still authoritative."),
		redirects:    reg.Counter("fleet_redirects_total", "Redirect frames sent to streaming clients whose session moved or lost its backend."),

		migSuspend: reg.Histogram("fleet_migration_suspend_seconds", "Latency of suspending (sealing) a live session ahead of migration.", obs.LatencyBuckets()),
		migCopy:    reg.Histogram("fleet_migration_copy_seconds", "Latency of staging, fsyncing, and renaming a session directory onto its target backend.", obs.LatencyBuckets()),
		migRecover: reg.Histogram("fleet_migration_recover_seconds", "Latency of journal replay recovering a migrated session on its target.", obs.LatencyBuckets()),

		probeRTT: reg.Histogram("fleet_probe_rtt_seconds", "Round-trip time of backend health probes.", obs.LatencyBuckets()),

		sessionsRouted: make(map[string]*obs.Counter, len(names)),
		resumesRouted:  make(map[string]*obs.Counter, len(names)),
		probeFailures:  make(map[string]*obs.Counter, len(names)),
		breakerOpens:   make(map[string]*obs.Counter, len(names)),
		breakerShorts:  make(map[string]*obs.Counter, len(names)),
		recoveries:     make(map[string]*obs.Counter, len(names)),
	}
	for _, name := range names {
		l := obs.L("backend", name)
		m.sessionsRouted[name] = reg.Counter("fleet_sessions_routed_total", "Fresh sessions placed on the backend.", l)
		m.resumesRouted[name] = reg.Counter("fleet_resumes_routed_total", "Session re-attachments landed on the backend.", l)
		m.probeFailures[name] = reg.Counter("fleet_probe_failures_total", "Failed health probes against the backend (total, not consecutive).", l)
		m.breakerOpens[name] = reg.Counter("fleet_breaker_opens_total", "Times the backend's circuit breaker tripped open on unreachable-class failures.", l)
		m.breakerShorts[name] = reg.Counter("fleet_breaker_short_circuits_total", "Calls refused fast because the backend's circuit was open.", l)
		m.recoveries[name] = reg.Counter("fleet_backend_recoveries_total", "Down-to-up transitions earned through consecutive good probes (a high rate means the backend is flapping).", l)
	}
	return m
}

// registerBackendUp adds the fleet_backend_up gauge for each backend once
// the health monitor exists (the gauge closes over live prober state).
func (m *fleetMetrics) registerBackendUp(reg *obs.Registry, names []string, h *healthMonitor) {
	for _, name := range names {
		name := name
		reg.GaugeFunc("fleet_backend_up", "1 while the backend is routable (probed up), else 0.",
			func() float64 {
				if h.routable(name) {
					return 1
				}
				return 0
			}, obs.L("backend", name))
	}
}

// probeHook folds one health-probe outcome into the registry. Wired into
// the health monitor's prober loop; admin-driven state changes (drain,
// markDown) are not probes and do not pass through here.
func (m *fleetMetrics) probeHook(name string, rtt time.Duration, err error) {
	m.probeRTT.ObserveDuration(rtt)
	if err != nil && !errors.Is(err, ErrBackendDraining) {
		if c, ok := m.probeFailures[name]; ok {
			c.Inc()
		}
	}
}
