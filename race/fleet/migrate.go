package fleet

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"os"
	"path/filepath"
	"syscall"
	"time"

	"repro/internal/obs/tracing"
	"repro/internal/wire"
	"repro/race/server"
)

// Migration moves a sealed session directory between backend data dirs:
//
//	source: Suspend(id)        — drain the queue, seal the journal, free
//	                             the slot; the dir is now quiescent
//	router: copy dir           — into the target's sessions/ under a
//	                             ".importing-<id>" staging name, fsync
//	                             everything, then rename into place (the
//	                             target's recovery scan ignores dot-dirs,
//	                             so a torn copy is invisible)
//	target: RecoverSession(id) — journal replay brings the engine to the
//	                             exact suspended state
//	router: remove source dir  — the session now has one home
//
// The client's half: its connection errors (or gets a Redirect), it
// re-resumes through the router, and the resume ack tells it the offset the
// journal preserved — by the flush-barrier contract that offset is at least
// its last acked flush, so replaying its retained suffix loses nothing.

// sessionDir is the on-disk home of id under a backend data dir.
func sessionDir(dataDir, id string) string {
	return filepath.Join(dataDir, "sessions", id)
}

// hasSessionDir reports whether id's directory exists under dataDir.
func hasSessionDir(dataDir, id string) bool {
	if dataDir == "" {
		return false
	}
	fi, err := os.Stat(sessionDir(dataDir, id))
	return err == nil && fi.IsDir()
}

// copySessionDir stages a copy of id's directory from srcDir's tree into
// dstDir's tree and renames it into place. Every file is fsynced before the
// rename, so a crash mid-copy leaves either no visible dir or a complete
// one.
func copySessionDir(srcDataDir, dstDataDir, id string) error {
	src := sessionDir(srcDataDir, id)
	final := sessionDir(dstDataDir, id)
	staging := filepath.Join(dstDataDir, "sessions", ".importing-"+id)
	if err := os.RemoveAll(staging); err != nil {
		return err
	}
	if err := copyTree(src, staging); err != nil {
		os.RemoveAll(staging)
		return fmt.Errorf("fleet: copying session %s: %w", id, err)
	}
	if err := os.Rename(staging, final); err != nil {
		os.RemoveAll(staging)
		return err
	}
	return syncDir(filepath.Dir(final))
}

func copyTree(src, dst string) error {
	return filepath.WalkDir(src, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(src, path)
		if err != nil {
			return err
		}
		target := filepath.Join(dst, rel)
		if d.IsDir() {
			return os.MkdirAll(target, 0o777)
		}
		if !d.Type().IsRegular() {
			return nil
		}
		return copyFileSync(path, target)
	})
}

func copyFileSync(src, dst string) error {
	in, err := os.Open(src)
	if err != nil {
		return err
	}
	defer in.Close()
	out, err := os.OpenFile(dst, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o666)
	if err != nil {
		return err
	}
	if _, err := io.Copy(out, in); err != nil {
		out.Close()
		return err
	}
	if err := out.Sync(); err != nil {
		out.Close()
		return err
	}
	return out.Close()
}

func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

// suspendTimed suspends id on b, observing the seal latency of successful
// suspends into the migration-suspend histogram.
func (rt *Router) suspendTimed(ctx context.Context, b Backend, id string) (uint64, error) {
	ssp := rt.span(ctx, "fleet.migrate.suspend")
	ssp.SetAttr("session", id)
	ssp.SetAttr("backend", b.Name())
	t0 := time.Now()
	fed, err := b.Suspend(ctx, id)
	rt.breakerRecord(b.Name(), err)
	if err == nil {
		rt.metrics.migSuspend.ObserveDuration(time.Since(t0))
	}
	ssp.SetError(err)
	ssp.End()
	return fed, err
}

// migrate moves session id from src (whose directory holds it; src may be
// dead) to dst and recovers it there. The source directory is removed only
// after the target has recovered the session, so a failure at any step
// leaves a resumable copy somewhere.
func (rt *Router) migrate(ctx context.Context, id string, srcDataDir string, dst Backend) error {
	msp := rt.span(ctx, "fleet.migrate")
	msp.SetAttr("session", id)
	msp.SetAttr("target", dst.Name())
	if msp != nil {
		ctx = tracing.ContextWith(ctx, msp.Context())
	}
	defer msp.End()
	rt.metrics.migStarted.Inc()
	err := rt.doMigrate(ctx, id, srcDataDir, dst)
	if err != nil {
		msp.SetError(err)
		rt.metrics.migFailed.Inc()
		return err
	}
	rt.metrics.migCompleted.Inc()
	return nil
}

func (rt *Router) doMigrate(ctx context.Context, id string, srcDataDir string, dst Backend) error {
	if srcDataDir == "" || dst.DataDir() == "" {
		return fmt.Errorf("fleet: migrating %s: both backends need data dirs", id)
	}
	if srcDataDir != dst.DataDir() {
		csp := rt.span(ctx, "fleet.migrate.copy")
		csp.SetAttr("session", id)
		t0 := time.Now()
		if err := copySessionDir(srcDataDir, dst.DataDir(), id); err != nil {
			csp.SetError(err)
			csp.End()
			return err
		}
		csp.End()
		rt.metrics.migCopy.ObserveDuration(time.Since(t0))
	}
	rsp := rt.span(ctx, "fleet.migrate.recover")
	rsp.SetAttr("session", id)
	rsp.SetAttr("backend", dst.Name())
	defer rsp.End()
	rctx := ctx
	if rsp != nil {
		rctx = tracing.ContextWith(ctx, rsp.Context())
	}
	t1 := time.Now()
	if err := dst.RecoverSession(rctx, id); err != nil {
		rsp.SetError(err)
		// Leave both copies; the source dir is still authoritative.
		if srcDataDir != dst.DataDir() {
			os.RemoveAll(sessionDir(dst.DataDir(), id))
		}
		return fmt.Errorf("fleet: recovering %s on %s: %w", id, dst.Name(), err)
	}
	rt.metrics.migRecover.ObserveDuration(time.Since(t1))
	if srcDataDir != dst.DataDir() {
		if err := os.RemoveAll(sessionDir(srcDataDir, id)); err != nil {
			return fmt.Errorf("fleet: removing migrated source dir for %s: %w", id, err)
		}
	}
	return nil
}

// MigrateSession explicitly moves a session to the named backend: suspend
// it wherever it lives now (if live anywhere), copy + recover on the
// target. The streaming client, if any, is redirected by its proxy loop
// and re-resumes onto the migrated session.
func (rt *Router) MigrateSession(ctx context.Context, id, to string) error {
	dst, ok := rt.backends[to]
	if !ok {
		return fmt.Errorf("fleet: unknown backend %q", to)
	}
	if !rt.health.reachable(to) {
		return fmt.Errorf("fleet: target backend %s is down", to)
	}
	unlock := rt.lockSession(id)
	defer unlock()

	// Find the live holder by suspending: success identifies the holder
	// and seals the journal in one step.
	var srcDataDir string
	for _, name := range rt.ring.sequence(id) {
		b := rt.backends[name]
		if name == to || !rt.health.reachable(name) || b.DataDir() == "" {
			continue
		}
		if _, err := rt.suspendTimed(ctx, b, id); err != nil {
			if isUnreachable(err) {
				rt.health.markDown(name)
			}
			continue
		}
		srcDataDir = b.DataDir()
		break
	}
	if srcDataDir == "" {
		// Not live anywhere (crashed backend, or already suspended):
		// fall back to locating the directory on disk.
		for _, name := range rt.ring.sequence(id) {
			b := rt.backends[name]
			if name != to && hasSessionDir(b.DataDir(), id) {
				srcDataDir = b.DataDir()
				break
			}
		}
	}
	if srcDataDir == "" {
		if hasSessionDir(dst.DataDir(), id) {
			// Already home: just make sure it's loaded.
			if sess, _, err := dst.Resume(ctx, id); err == nil {
				sess.Release()
				return nil
			}
			return dst.RecoverSession(ctx, id)
		}
		return fmt.Errorf("fleet: session %s not found on any backend", id)
	}
	return rt.migrate(ctx, id, srcDataDir, dst)
}

// isUnreachable classifies an error as "the backend is gone" (connection-
// level failure, a killed local backend, or a tripped circuit) rather than
// a session-level rejection. Classification is purely typed — errors.Is
// over the sentinels and errnos the transport actually produces — so an
// injected fault (fault.Conn, fault.Gate) and an organic one route the same.
func isUnreachable(err error) bool {
	if err == nil {
		return false
	}
	if errors.Is(err, ErrBackendDown) || errors.Is(err, ErrCircuitOpen) {
		return true
	}
	// Connection-level errnos, surfaced through net.OpError (and url.Error
	// for HTTP) chains; errors.Is traverses all of them.
	if errors.Is(err, syscall.ECONNREFUSED) || errors.Is(err, syscall.ECONNRESET) ||
		errors.Is(err, syscall.EPIPE) || errors.Is(err, syscall.EHOSTUNREACH) ||
		errors.Is(err, syscall.ENETUNREACH) || errors.Is(err, syscall.ETIMEDOUT) {
		return true
	}
	// A peer that vanished mid-frame, a closed socket, or a stall cut by an
	// I/O deadline.
	if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) ||
		errors.Is(err, net.ErrClosed) || errors.Is(err, os.ErrDeadlineExceeded) {
		return true
	}
	var dnsErr *net.DNSError
	if errors.As(err, &dnsErr) {
		return true
	}
	var ne net.Error
	return errors.As(err, &ne) && ne.Timeout()
}

// isHandoffError classifies a mid-stream session failure as "the session
// moved or its backend died" — the client should re-resume — rather than a
// permanent stream error. Remote backends carry their sentinels through
// typed TError frames (and the error-code header), so errors.Is reaches
// across the wire; RemoteErrorCode covers the codes with no local sentinel.
func isHandoffError(err error) bool {
	if err == nil {
		return false
	}
	if errors.Is(err, server.ErrSuspended) || errors.Is(err, server.ErrHandoff) ||
		errors.Is(err, server.ErrEvicted) || errors.Is(err, ErrBackendDown) {
		return true
	}
	if errors.Is(err, wire.ErrCorruptFrame) {
		return true
	}
	switch server.RemoteErrorCode(err) {
	case wire.CodeSuspended, wire.CodeEvicted, wire.CodeTimeout, wire.CodeCorrupt:
		return true
	}
	return isUnreachable(err)
}
