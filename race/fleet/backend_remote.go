package fleet

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httputil"
	"net/url"
	"strings"
	"time"

	"repro/internal/obs/tracing"
	"repro/internal/wire"
	"repro/race"
	"repro/race/server"
)

// Remote is a raced instance reached over the network: sessions stream over
// the wire protocol to tcpAddr, control and proxying go over HTTP to
// httpAddr. DataDir is the backend's -data-dir as visible to the router
// (shared filesystem), which is what migration copies between.
type Remote struct {
	name     string
	tcpAddr  string
	httpAddr string
	dataDir  string
	base     *url.URL
	hc       *http.Client
	proxy    *httputil.ReverseProxy
	wrapConn func(net.Conn) net.Conn
}

// NewRemote builds a remote backend. httpAddr is a host:port or URL;
// dataDir may be empty for a memory-only backend (it then cannot take part
// in migrations).
func NewRemote(name, tcpAddr, httpAddr, dataDir string) (*Remote, error) {
	if !strings.Contains(httpAddr, "://") {
		httpAddr = "http://" + httpAddr
	}
	base, err := url.Parse(httpAddr)
	if err != nil {
		return nil, fmt.Errorf("fleet: backend %s: bad http address: %w", name, err)
	}
	proxy := httputil.NewSingleHostReverseProxy(base)
	proxy.ErrorHandler = func(w http.ResponseWriter, _ *http.Request, err error) {
		http.Error(w, fmt.Sprintf("fleet: backend %s: %v", name, err), http.StatusBadGateway)
	}
	return &Remote{
		name:     name,
		tcpAddr:  tcpAddr,
		httpAddr: httpAddr,
		dataDir:  dataDir,
		base:     base,
		hc:       &http.Client{Timeout: 30 * time.Second},
		proxy:    proxy,
	}, nil
}

func (b *Remote) Name() string    { return b.name }
func (b *Remote) DataDir() string { return b.dataDir }

// TCPAddr returns the backend's wire-protocol address.
func (b *Remote) TCPAddr() string { return b.tcpAddr }

// SetConnWrapper installs a wrapper applied to every wire connection the
// backend dials — the router→backend network fault-injection seam
// (fault.WrapConn). Set it before handing the backend to a Router.
func (b *Remote) SetConnWrapper(f func(net.Conn) net.Conn) { b.wrapConn = f }

// dial opens a wire-protocol connection to the backend, applying the
// fault-injection wrapper when one is installed.
func (b *Remote) dial(ctx context.Context) (*server.Client, error) {
	var d net.Dialer
	conn, err := d.DialContext(ctx, "tcp", b.tcpAddr)
	if err != nil {
		return nil, fmt.Errorf("fleet: backend %s: dialing: %w", b.name, err)
	}
	if b.wrapConn != nil {
		conn = b.wrapConn(conn)
	}
	return server.NewClient(conn), nil
}

// post issues a bodyless POST to path and decodes a JSON response into out
// (when non-nil). A non-2xx response becomes a typed error: the backend's
// X-Raced-Error-Code header (when present) is rebuilt into the matching
// sentinel chain, so errors.Is classifies identically to the wire path;
// the body text rides along for humans.
func (b *Remote) post(ctx context.Context, path string, out any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, b.base.JoinPath(path).String(), nil)
	if err != nil {
		return err
	}
	// Trace context rides the standard header, so a migration's recover
	// lands inside the router's migration span on the backend's trace too.
	if sc := tracing.FromContext(ctx); sc.Valid() {
		req.Header.Set(tracing.Header, sc.Traceparent())
	}
	resp, err := b.hc.Do(req)
	if err != nil {
		return fmt.Errorf("fleet: backend %s: %w", b.name, err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
	if resp.StatusCode/100 != 2 {
		msg := fmt.Sprintf("fleet: backend %s: %s: %s", b.name, resp.Status, strings.TrimSpace(string(body)))
		if code := wire.ErrCode(resp.Header.Get(wire.ErrorCodeHeader)); code != "" {
			return server.RemoteFault(code, msg)
		}
		return errors.New(msg)
	}
	if out != nil {
		return json.Unmarshal(body, out)
	}
	return nil
}

func (b *Remote) Healthz(ctx context.Context) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, b.base.JoinPath("/healthz").String(), nil)
	if err != nil {
		return err
	}
	resp, err := b.hc.Do(req)
	if err != nil {
		return fmt.Errorf("fleet: backend %s: %w", b.name, err)
	}
	defer resp.Body.Close()
	var st struct {
		OK       bool `json:"ok"`
		Draining bool `json:"draining"`
	}
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
	if err := json.Unmarshal(body, &st); err != nil {
		return fmt.Errorf("fleet: backend %s: bad healthz response (%s): %w", b.name, resp.Status, err)
	}
	if st.Draining {
		return ErrBackendDraining
	}
	if !st.OK || resp.StatusCode != http.StatusOK {
		return fmt.Errorf("fleet: backend %s: not ready: %s", b.name, strings.TrimSpace(string(body)))
	}
	return nil
}

func (b *Remote) Open(ctx context.Context, id string, cfg server.SessionConfig) (Session, error) {
	c, err := b.dial(ctx)
	if err != nil {
		return nil, err
	}
	sess, err := c.OpenID(ctx, id, cfg)
	if err != nil {
		c.Close()
		return nil, err
	}
	return &remoteSession{c: c, sess: sess}, nil
}

func (b *Remote) Resume(ctx context.Context, id string) (Session, uint64, error) {
	c, err := b.dial(ctx)
	if err != nil {
		return nil, 0, err
	}
	sess, fed, err := c.Resume(ctx, id)
	if err != nil {
		c.Close()
		return nil, 0, err
	}
	return &remoteSession{c: c, sess: sess}, fed, nil
}

func (b *Remote) Suspend(ctx context.Context, id string) (uint64, error) {
	var resp struct {
		Fed uint64 `json:"fed"`
	}
	if err := b.post(ctx, "/admin/sessions/"+url.PathEscape(id)+"/suspend", &resp); err != nil {
		return 0, err
	}
	return resp.Fed, nil
}

func (b *Remote) RecoverSession(ctx context.Context, id string) error {
	return b.post(ctx, "/admin/sessions/"+url.PathEscape(id)+"/recover", nil)
}

func (b *Remote) Drain(ctx context.Context) error {
	return b.post(ctx, "/admin/drain", nil)
}

func (b *Remote) Sessions(ctx context.Context) ([]server.SessionStatus, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, b.base.JoinPath("/sessions").String(), nil)
	if err != nil {
		return nil, err
	}
	resp, err := b.hc.Do(req)
	if err != nil {
		return nil, fmt.Errorf("fleet: backend %s: %w", b.name, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("fleet: backend %s: listing sessions: %s", b.name, resp.Status)
	}
	var doc struct {
		Sessions []server.SessionStatus `json:"sessions"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		return nil, err
	}
	return doc.Sessions, nil
}

func (b *Remote) Proxy(w http.ResponseWriter, r *http.Request) {
	b.proxy.ServeHTTP(w, r)
}

// remoteSession carries one session over a dedicated wire connection.
type remoteSession struct {
	c    *server.Client
	sess *server.RemoteSession
}

// SetFlushContext hands the router's flush span to the backend via the
// next Flush frame's optional trace payload.
func (s *remoteSession) SetFlushContext(sc tracing.SpanContext) { s.sess.SetFlushContext(sc) }

func (s *remoteSession) Feed(evs []race.Event) error { return s.sess.FeedBatch(evs) }

func (s *remoteSession) Flush() (uint64, error) {
	if err := s.sess.Flush(); err != nil {
		return 0, err
	}
	return s.sess.Flushed(), nil
}

func (s *remoteSession) Close() ([]byte, error) {
	doc, err := s.sess.CloseJSON()
	s.c.Close()
	return doc, err
}

func (s *remoteSession) Release() { s.c.Close() }
