// Command tracegen generates workload traces to files.
//
// Usage:
//
//	tracegen -program xalan -scale 4000 -seed 1 -o xalan.trace
//	tracegen -figure figure1 -text -o fig1.txt
//	tracegen -list
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/workload"
	"repro/race"
)

func main() {
	var (
		program = flag.String("program", "", "DaCapo-calibrated workload to generate")
		figure  = flag.String("figure", "", "paper figure trace to emit (figure1..figure4d)")
		scale   = flag.Int("scale", 4000, "scale divisor for -program")
		seed    = flag.Int64("seed", 1, "workload seed")
		out     = flag.String("o", "", "output file (default stdout)")
		text    = flag.Bool("text", false, "emit the text format instead of binary")
		list    = flag.Bool("list", false, "list available programs and figures")
	)
	flag.Parse()

	if *list {
		fmt.Println("programs:")
		for _, p := range workload.Programs {
			fmt.Printf("  %-10s %d threads, %.0fM paper events\n", p.Name, p.Threads, p.PaperEventsM)
		}
		fmt.Println("figures:")
		for _, f := range workload.Figures() {
			fmt.Printf("  %s\n", f.Name)
		}
		return
	}

	var tr *race.Trace
	switch {
	case *program != "":
		p, ok := workload.ProgramByName(*program)
		if !ok {
			fatalf("unknown program %q (try -list)", *program)
		}
		tr = p.Generate(*scale, *seed)
	case *figure != "":
		for _, f := range workload.Figures() {
			if f.Name == *figure {
				tr = f.Trace
				break
			}
		}
		if tr == nil {
			fatalf("unknown figure %q (try -list)", *figure)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatalf("%v", err)
		}
		defer f.Close()
		w = f
	}
	var err error
	if *text {
		err = race.WriteTraceText(w, tr)
	} else {
		// Stream through the encoder — the same path a live producer that
		// never holds the whole trace would use.
		enc := race.NewTraceEncoder(w, race.HintsOf(tr))
		for _, e := range tr.Events {
			if err = enc.Encode(e); err != nil {
				break
			}
		}
		if err == nil {
			err = enc.Close()
		}
	}
	if err != nil {
		fatalf("writing trace: %v", err)
	}
	fmt.Fprintf(os.Stderr, "tracegen: %d events, %d threads, %d vars, %d locks\n",
		tr.Len(), tr.Threads, tr.Vars, tr.Locks)
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "tracegen: "+format+"\n", args...)
	os.Exit(1)
}
