// Command racefleet is the stateless ingress router for a raced fleet: it
// serves the same wire protocol and HTTP API as a single raced, hashes each
// session onto one of N backends (consistent hashing, virtual nodes),
// health-checks the backends, and migrates sessions between them through
// their durable racelog journals — so adding a backend adds capacity and
// losing one costs a journal replay, not data.
//
//	raced -http :7117 -tcp :7118 -data-dir /var/lib/raced/b1 &
//	raced -http :7127 -tcp :7128 -data-dir /var/lib/raced/b2 &
//	racefleet -http :7119 -tcp :7120 \
//	    -backend b1,localhost:7118,localhost:7117,/var/lib/raced/b1 \
//	    -backend b2,localhost:7128,localhost:7127,/var/lib/raced/b2
//
// Clients now point at the router and nothing else changes:
//
//	racedetect -remote localhost:7120 -retry -analysis ST-WDC trace.bin
//	curl -s --data-binary @trace.bin 'localhost:7119/ingest?analysis=ST-WDC'
//
// Fleet administration:
//
//	curl -XPOST localhost:7119/admin/backends/b1/drain     # stop new sessions on b1
//	curl -XPOST 'localhost:7119/admin/sessions/f0a1b2c3d4e5/migrate?to=b2'
//	curl -s localhost:7119/metrics | jq .                  # routing + migration counters
//	curl -s 'localhost:7119/metrics?format=prometheus'     # text exposition
//
// Observability: GET /metrics serves the canonical fleet_* metric catalog
// (plus go_* runtime self-metrics and fleet_build_info) as JSON, or as
// Prometheus text exposition v0.0.4 with ?format=prometheus or an Accept
// header asking for text/plain. -debug-addr starts an optional
// net/http/pprof listener; -log-level sets the structured-log (log/slog)
// threshold. -trace records router spans — session, placement, flush,
// migration — joined to client and backend spans under one trace ID
// (GET /debug/traces, ?format=chrome for Perfetto); -trace-slow logs any
// trace slower than a threshold. cmd/racemon scrapes a router and its
// backends together into fleet-wide load reports.
//
// Migration requires the backend data dirs to be paths the router can read
// and write (same host or a shared filesystem): the router suspends the
// session at its source (sealing the journal), copies the session
// directory to the target, recovers it there, and the streaming client —
// told to reconnect by a Redirect frame — transparently resumes at the
// acked offset.
package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof on DefaultServeMux (-debug-addr)
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/obs"
	"repro/internal/obs/tracing"
	"repro/race/fleet"
)

// backendFlag collects repeated -backend definitions.
type backendFlag []string

func (b *backendFlag) String() string { return strings.Join(*b, " ") }
func (b *backendFlag) Set(v string) error {
	*b = append(*b, v)
	return nil
}

func main() {
	var backendSpecs backendFlag
	var (
		httpAddr  = flag.String("http", ":7119", "HTTP API listen address (empty disables)")
		tcpAddr   = flag.String("tcp", ":7120", "wire-protocol TCP listen address (empty disables)")
		vnodes    = flag.Int("vnodes", fleet.DefaultVNodes, "virtual nodes per backend on the hash ring")
		interval  = flag.Duration("probe-interval", fleet.DefaultProbeInterval, "health-probe interval")
		threshold = flag.Int("probe-threshold", fleet.DefaultProbeThreshold, "consecutive probe failures before a backend is down")
		ioTimeout = flag.Duration("io-timeout", 0, "cut client wire connections making no read or write progress for this long (0 disables)")
		brkThresh = flag.Int("breaker-threshold", fleet.DefaultBreakerThreshold, "consecutive unreachable failures before a backend's circuit opens")
		brkCool   = flag.Duration("breaker-cooldown", fleet.DefaultBreakerCooldown, "open-circuit cooldown before a half-open trial")
		debugAddr = flag.String("debug-addr", "", "net/http/pprof listen address (empty disables)")
		logLevel  = flag.String("log-level", "info", "log threshold: debug, info, warn, or error")
		trace     = flag.Bool("trace", false, "record router spans for every session, placement, flush, and migration (GET /debug/traces)")
		traceSlow = flag.Duration("trace-slow", 0, "log any trace whose root span exceeds this duration, with a per-span breakdown (implies -trace)")
	)
	flag.Var(&backendSpecs, "backend", "backend as name,tcpAddr,httpAddr[,dataDir] (repeatable)")
	flag.Parse()

	if len(backendSpecs) == 0 {
		fatalf("no backends: pass at least one -backend name,tcpAddr,httpAddr[,dataDir]")
	}
	if *httpAddr == "" && *tcpAddr == "" {
		fatalf("nothing to serve: both -http and -tcp are empty")
	}
	level, err := obs.ParseLevel(*logLevel)
	if err != nil {
		fatalf("%v", err)
	}
	logger := obs.NewLogger(os.Stderr, level).With("component", "racefleet")
	var backends []fleet.Backend
	for _, spec := range backendSpecs {
		parts := strings.Split(spec, ",")
		if len(parts) < 3 || len(parts) > 4 {
			fatalf("bad -backend %q: want name,tcpAddr,httpAddr[,dataDir]", spec)
		}
		dataDir := ""
		if len(parts) == 4 {
			dataDir = parts[3]
		}
		b, err := fleet.NewRemote(parts[0], parts[1], parts[2], dataDir)
		if err != nil {
			fatalf("%v", err)
		}
		backends = append(backends, b)
	}

	var tracer *tracing.Tracer
	if *trace || *traceSlow > 0 {
		tracer = tracing.New(tracing.Options{
			Service:       "racefleet",
			SlowThreshold: *traceSlow,
			Logger:        logger,
		})
		logger.Info("tracing enabled", "slow_threshold", traceSlow.String())
	}

	rt, err := fleet.New(backends, fleet.Options{
		VNodes:           *vnodes,
		ProbeInterval:    *interval,
		ProbeThreshold:   *threshold,
		IOTimeout:        *ioTimeout,
		BreakerThreshold: *brkThresh,
		BreakerCooldown:  *brkCool,
		Logger:           logger,
		Tracer:           tracer,
	})
	if err != nil {
		fatalf("%v", err)
	}
	obs.RegisterRuntimeMetrics(rt.Registry())
	obs.RegisterBuildInfo(rt.Registry(), "fleet")
	defer rt.Close()
	logger.Info("routing", "backends", strings.Join(rt.Backends(), ", "))

	errc := make(chan error, 3)
	if *tcpAddr != "" {
		lis, err := net.Listen("tcp", *tcpAddr)
		if err != nil {
			fatalf("%v", err)
		}
		logger.Info("wire protocol listening", "addr", lis.Addr().String())
		go func() { errc <- rt.ServeTCP(lis) }()
	}
	if *httpAddr != "" {
		lis, err := net.Listen("tcp", *httpAddr)
		if err != nil {
			fatalf("%v", err)
		}
		logger.Info("HTTP API listening", "addr", lis.Addr().String())
		hs := &http.Server{Handler: rt.Handler(), ReadHeaderTimeout: 10 * time.Second}
		go func() { errc <- hs.Serve(lis) }()
	}
	if *debugAddr != "" {
		lis, err := net.Listen("tcp", *debugAddr)
		if err != nil {
			fatalf("%v", err)
		}
		logger.Info("pprof debug listening", "addr", lis.Addr().String())
		// nil handler = DefaultServeMux, where net/http/pprof registered.
		go func() { errc <- http.Serve(lis, nil) }()
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		if err != nil {
			fatalf("%v", err)
		}
	case s := <-sig:
		// The router is stateless: sessions live in backend journals, so
		// there is nothing to drain here.
		logger.Info("shutting down", "signal", s.String())
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "racefleet: "+format+"\n", args...)
	os.Exit(1)
}
