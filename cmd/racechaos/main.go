// Command racechaos is the deterministic fault-injection harness: it boots
// a two-backend raced fleet in-process (real TCP listeners, real journals),
// turns on a seed-driven fault schedule at one or more of the three seams —
// disk (internal/fault.InjectFS under one backend's journals), net
// (internal/fault.Conn corrupting, dropping, and delaying the router's
// client connections), and fleet (internal/fault.Gate flapping one backend
// up and down) — and streams full 15-cell analysis sessions through the
// chaos. The contract it enforces is the one the whole robustness stack
// exists for:
//
//	every session either finishes with a report byte-identical to
//	uninterrupted in-process batch Analyze, or fails loudly with a
//	classified (typed) error. Nothing hangs, nothing corrupts silently,
//	nothing fails with an unclassifiable shrug.
//
// The same seed replays the same schedule, so a failure here is a
// deterministic repro, not a flake. Exit status: 0 when every session met
// the contract AND the schedule actually injected at least -min-faults
// faults (a schedule that injects nothing is vacuously green and exits 2);
// 1 on any contract violation.
//
//	racechaos                         # all three schedules, seed 1
//	racechaos -schedule net -seed 7 -sessions 8
//	racechaos -schedule disk -events 80000 -min-faults 5 -v
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"net"
	"os"
	"time"

	"repro/internal/fault"
	"repro/internal/workload"
	"repro/race"
	"repro/race/fleet"
	"repro/race/server"
)

func main() {
	var (
		seed      = flag.Uint64("seed", 1, "fault-schedule seed (same seed, same chaos)")
		schedule  = flag.String("schedule", "all", "fault schedule: disk, net, flap, or all")
		sessions  = flag.Int("sessions", 6, "sessions to stream per schedule")
		events    = flag.Int("events", 30000, "events per session")
		minFaults = flag.Int("min-faults", 1, "minimum injected faults per schedule (guards against a vacuous run)")
		verbose   = flag.Bool("v", false, "log each session's verdict")
	)
	flag.Parse()

	names := race.Detectors()
	if len(names) != 15 {
		fatalf("registry has %d analyses, want the paper's 15 Table 1 cells", len(names))
	}

	schedules := []string{"disk", "net", "flap"}
	if *schedule != "all" {
		schedules = []string{*schedule}
	}
	failed, vacuous := false, false
	for _, name := range schedules {
		ok, injected, err := runSchedule(name, *seed, *sessions, *events, names, *verbose)
		if err != nil {
			fatalf("schedule %s: %v", name, err)
		}
		if !ok {
			failed = true
		}
		if injected < int64(*minFaults) {
			fmt.Fprintf(os.Stderr, "racechaos: schedule %s injected %d faults, want >= %d — the run proved nothing\n",
				name, injected, *minFaults)
			vacuous = true
		}
	}
	if failed {
		os.Exit(1)
	}
	if vacuous {
		os.Exit(2)
	}
	fmt.Println("racechaos: all schedules met the contract")
}

// chaosFleet is one booted fleet plus the fault hooks its schedule armed.
type chaosFleet struct {
	router  *fleet.Router
	addr    string // router wire address
	cleanup []func()

	// injected returns how many faults the schedule has fired so far.
	injected func() int64
}

func (c *chaosFleet) close() {
	for i := len(c.cleanup) - 1; i >= 0; i-- {
		c.cleanup[i]()
	}
}

// buildFleet boots two durable in-process backends behind a router with the
// named fault schedule armed. Fast probes and breakers keep failover inside
// the harness's patience.
func buildFleet(schedule string, seed uint64) (*chaosFleet, error) {
	c := &chaosFleet{}
	tmp, err := os.MkdirTemp("", "racechaos-")
	if err != nil {
		return nil, err
	}
	c.cleanup = append(c.cleanup, func() { os.RemoveAll(tmp) })

	cfg := func(sub string, fsys fault.FS) server.Config {
		dir := tmp + "/" + sub
		if err := os.MkdirAll(dir, 0o777); err != nil {
			fatalf("%v", err)
		}
		return server.Config{DataDir: dir, FS: fsys, IdleTimeout: -1, IOTimeout: 5 * time.Second}
	}

	var fs1 fault.FS = fault.OS{}
	var injectFS *fault.InjectFS
	if schedule == "disk" {
		// One backend's disk goes bad: occasional failed syncs and writes,
		// plus a hard ENOSPC wall. The other backend's disk stays clean, so
		// the fleet keeps taking sessions while the sick one degrades.
		injectFS = fault.NewInjectFS(fault.OS{}, fault.FSPlan{
			Seed:          seed,
			SyncFailProb:  0.02,
			WriteFailProb: 0.002,
			ENOSPCAfter:   8 << 20,
		})
		fs1 = injectFS
	}
	srv1 := server.New(cfg("b1", fs1))
	srv2 := server.New(cfg("b2", fault.OS{}))
	c.cleanup = append(c.cleanup, func() { srv1.Close() }, func() { srv2.Close() })

	var b1 fleet.Backend = fleet.NewLocal("b1", srv1)
	b2 := fleet.NewLocal("b2", srv2)

	var gate *fault.Gate
	if schedule == "flap" {
		// One backend flaps: short up/down cycles severing its wire ops
		// (and probes) while it is down — sessions must ride the failovers.
		gate = fault.NewGate(fault.GatePlan{
			Seed:     seed,
			MeanUp:   400 * time.Millisecond,
			MeanDown: 120 * time.Millisecond,
		})
		b1 = fleet.NewFaultBackend(b1, func(op string) error {
			switch op {
			case "open", "resume", "feed", "flush", "close", "healthz":
				return gate.Err()
			}
			return nil
		})
	}

	opts := fleet.Options{
		ProbeInterval:   50 * time.Millisecond,
		ProbeThreshold:  2,
		BreakerCooldown: 200 * time.Millisecond,
		IOTimeout:       5 * time.Second,
	}
	var connStats *fault.ConnStats
	if schedule == "net" {
		// The client↔router wire takes the beating: latency, drops, and
		// bit flips. Flips must surface as CRC-caught corrupt frames (never
		// as silently wrong data); drops as reconnect+resume.
		connStats = fault.NewConnStats()
		// Probabilities are per Read/Write call (bufio batches them into a
		// few dozen calls per megabyte), so per-call odds this high still
		// mean a handful of faults per session, not a storm.
		plan := fault.ConnPlan{
			Seed:       seed,
			LatencyMax: 200 * time.Microsecond,
			DropProb:   0.03,
			FlipProb:   0.02,
			FirstByte:  1 << 14, // let every handshake through
		}
		rng := fault.NewRand(seed)
		opts.WrapConn = func(conn net.Conn) net.Conn {
			p := plan
			p.Seed = rng.Split() // per-connection deterministic sub-schedule
			return fault.WrapConn(conn, p, connStats)
		}
	}

	rt, err := fleet.New([]fleet.Backend{b1, b2}, opts)
	if err != nil {
		return nil, err
	}
	c.router = rt
	c.cleanup = append(c.cleanup, rt.Close)

	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	c.addr = lis.Addr().String()
	c.cleanup = append(c.cleanup, func() { lis.Close() })
	go rt.ServeTCP(lis)

	c.injected = func() int64 {
		switch {
		case injectFS != nil:
			return injectFS.Injected()
		case connStats != nil:
			// Latency is seasoning, not a fault; gate on the ones that
			// actually break something.
			counts := connStats.Counts()
			return counts["drop"] + counts["flip"] + counts["stall"]
		case gate != nil:
			return gate.Faults()
		}
		return 0
	}
	return c, nil
}

// reference computes the uninterrupted in-process truth for tr.
func reference(tr *race.Trace, names []string) ([]byte, error) {
	eng, err := race.NewEngine(race.WithAnalysisNames(names...))
	if err != nil {
		return nil, err
	}
	if err := eng.FeedTrace(tr); err != nil {
		return nil, err
	}
	rep, err := eng.Close()
	if err != nil {
		return nil, err
	}
	return json.Marshal(rep)
}

// classify names the typed class of a session failure, or "" when the
// error is unclassified — the contract violation the harness exists to
// catch.
func classify(err error) string {
	if code := server.RemoteErrorCode(err); code != "" {
		return "code:" + string(code)
	}
	switch {
	case errors.Is(err, server.ErrDiskFault):
		return "disk-fault"
	case errors.Is(err, server.ErrSuspended), errors.Is(err, server.ErrHandoff):
		return "handoff"
	case errors.Is(err, server.ErrEvicted):
		return "evicted"
	case errors.Is(err, server.ErrDraining), errors.Is(err, fleet.ErrBackendDraining):
		return "draining"
	case errors.Is(err, server.ErrServerFull), errors.Is(err, fleet.ErrNoBackends):
		return "capacity"
	case errors.Is(err, fleet.ErrBackendDown), errors.Is(err, fleet.ErrCircuitOpen):
		return "backend-down"
	case errors.Is(err, fault.ErrInjected):
		return "injected"
	case errors.Is(err, context.DeadlineExceeded):
		return "timeout"
	}
	return ""
}

// runSchedule streams sessions through one armed schedule and scores them
// against the contract: every session ends byte-identical or loudly
// classified; a mismatch (silent corruption) or an unclassified error is a
// violation.
func runSchedule(schedule string, seed uint64, sessions, events int, names []string, verbose bool) (bool, int64, error) {
	c, err := buildFleet(schedule, seed)
	if err != nil {
		return false, 0, err
	}
	defer c.close()

	programs := []string{"avrora", "xalan", "h2", "tomcat", "jython", "lusearch"}
	ok, completed, failedLoud := true, 0, 0
	for i := 0; i < sessions; i++ {
		prog, _ := workload.ProgramByName(programs[i%len(programs)])
		tr := prog.Generate(events, int64(3+i))
		want, err := reference(tr, names)
		if err != nil {
			return false, 0, fmt.Errorf("reference analysis: %w", err)
		}
		verdict := streamSession(c.addr, tr, names, want)
		violation := verdict == "unclassified" || verdict == "mismatch"
		switch {
		case verdict == "ok":
			completed++
		case violation:
			ok = false
		default:
			failedLoud++
		}
		if verbose || violation {
			fmt.Printf("racechaos: %s session %d (%s, %d events): %s\n",
				schedule, i, prog.Name, tr.Len(), verdict)
		}
	}

	injected := c.injected()
	fmt.Printf("racechaos: schedule=%s seed=%d sessions=%d ok=%d failed-classified=%d injected-faults=%d\n",
		schedule, seed, sessions, completed, failedLoud, injected)
	return ok, injected, nil
}

// streamSession pushes one trace through a reliable session and returns
// "ok" (byte-identical report), a classified failure name, "mismatch", or
// "unclassified".
func streamSession(addr string, tr *race.Trace, names []string, want []byte) string {
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	sess, err := server.OpenReliable(ctx, addr, server.SessionConfig{Analyses: names},
		server.WithRetry(server.RetryPolicy{MaxAttempts: 12, BaseDelay: 10 * time.Millisecond, MaxDelay: 250 * time.Millisecond}))
	if err != nil {
		return failureVerdict(err)
	}
	const chunk = 1024
	for off := 0; off < len(tr.Events); off += chunk {
		end := min(off+chunk, len(tr.Events))
		if err := sess.FeedBatch(tr.Events[off:end]); err != nil {
			return failureVerdict(err)
		}
		if off/chunk%8 == 7 {
			if err := sess.Flush(); err != nil {
				return failureVerdict(err)
			}
		}
	}
	got, err := sess.CloseJSON()
	if err != nil {
		return failureVerdict(err)
	}
	if !bytes.Equal(got, want) {
		return "mismatch" // silent corruption: the worst possible outcome
	}
	return "ok"
}

func failureVerdict(err error) string {
	if class := classify(err); class != "" {
		return "failed:" + class
	}
	fmt.Fprintf(os.Stderr, "racechaos: UNCLASSIFIED error: %v\n", err)
	return "unclassified"
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "racechaos: "+format+"\n", args...)
	os.Exit(1)
}
