// Command racemon is a sidecar metrics collector for a raced fleet: it
// polls the Prometheus exposition of N /metrics endpoints (raced backends
// and/or a racefleet router) on a fixed interval, aggregates fleet-wide
// throughput from counter deltas, and writes a LOAD_*.json report — the
// collector half of the ReqBench-style load harness (ROADMAP item 1).
//
//	raced -http :7117 & raced -http :7127 &
//	racemon -target localhost:7117 -target localhost:7127 \
//	    -interval 5s -cycles 12 -o LOAD_run.json
//	racemon -check LOAD_run.json        # validate schema + monotonicity
//
// Every cycle records, per target: reachability, every counter and gauge
// by canonical name, and each histogram as {count, sum, p50, p90, p99}.
// The fleet aggregate is events/second computed from the deltas of
// raced_events_analyzed_total across all targets. The summary carries
// sustained and peak throughput, merged flush-ack quantiles, and the
// scrape-error count.
//
// -check re-reads a report and fails (non-zero exit) unless the schema is
// racemon/v1 (or the raceload/v1 superset emitted by cmd/raceload), at
// least one cycle was collected, and every per-target counter is monotone
// non-decreasing across cycles — the same assertions CI's smoke jobs make.
//
// The collection and validation logic lives in internal/obs/collect so
// cmd/raceload can run the same collector inline while generating load;
// this file is only flag parsing and the polling loop.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/obs"
	"repro/internal/obs/collect"
)

type targetFlag []string

func (t *targetFlag) String() string { return strings.Join(*t, ",") }
func (t *targetFlag) Set(v string) error {
	*t = append(*t, v)
	return nil
}

func main() {
	var targets targetFlag
	var (
		interval    = flag.Duration("interval", 5*time.Second, "polling interval")
		cycles      = flag.Int("cycles", 0, "number of polling rounds (0 runs until SIGINT/SIGTERM)")
		out         = flag.String("o", "LOAD_racemon.json", "report output path")
		check       = flag.String("check", "", "validate an existing report instead of collecting")
		metricsAddr = flag.String("metrics-addr", "", "serve racemon's own /metrics (go_* self-metrics, build info) at this address (empty disables)")
		logLevel    = flag.String("log-level", "info", "log threshold: debug, info, warn, or error")
	)
	flag.Var(&targets, "target", "metrics endpoint as host:port or URL (repeatable)")
	flag.Parse()

	level, err := obs.ParseLevel(*logLevel)
	if err != nil {
		fatalf("%v", err)
	}
	logger := obs.NewLogger(os.Stderr, level).With("component", "racemon")

	if *check != "" {
		if err := collect.CheckFile(*check); err != nil {
			fatalf("%s: %v", *check, err)
		}
		logger.Info("report valid", "path", *check)
		return
	}
	if len(targets) == 0 {
		fatalf("no targets: pass at least one -target host:port")
	}
	urls := make([]string, len(targets))
	for i, t := range targets {
		urls[i] = collect.NormalizeTarget(t)
	}
	if *metricsAddr != "" {
		reg := obs.NewRegistry()
		obs.RegisterRuntimeMetrics(reg)
		obs.RegisterBuildInfo(reg, "racemon")
		go func() {
			logger.Info("self-metrics listening", "addr", *metricsAddr)
			if err := http.ListenAndServe(*metricsAddr, selfMetricsHandler(reg)); err != nil {
				logger.Warn("self-metrics server failed", "err", err)
			}
		}()
	}

	rep := &collect.Report{
		Schema:          collect.SchemaVersion,
		IntervalSeconds: interval.Seconds(),
		Targets:         urls,
	}
	client := &http.Client{Timeout: *interval}
	col := collect.New(rep)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)

	tick := time.NewTicker(*interval)
	defer tick.Stop()
collectLoop:
	for i := 0; *cycles == 0 || i < *cycles; i++ {
		now := time.Now()
		samples := make(map[string]collect.TargetSample, len(urls))
		for _, u := range urls {
			s, err := collect.Scrape(client, u)
			if err != nil {
				logger.Warn("scrape failed", "target", u, "err", err)
				rep.Summary.ScrapeErrors++
				samples[u] = collect.TargetSample{Up: false}
				continue
			}
			samples[u] = s
		}
		cyc := col.Record(now, samples)
		logger.Debug("cycle", "n", i, "events_total", cyc.Fleet.EventsAnalyzedTotal,
			"events_per_second", cyc.Fleet.EventsPerSecond)

		if *cycles != 0 && i == *cycles-1 {
			break
		}
		select {
		case <-tick.C:
		case s := <-sig:
			logger.Info("stopping", "signal", s.String())
			break collectLoop
		}
	}

	col.Finish()
	doc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fatalf("%v", err)
	}
	if err := os.WriteFile(*out, append(doc, '\n'), 0o666); err != nil {
		fatalf("%v", err)
	}
	logger.Info("report written", "path", *out, "cycles", len(rep.Cycles),
		"sustained_eps", rep.Summary.SustainedEventsPerSecond)
}

// selfMetricsHandler serves racemon's own registry at /metrics, honoring
// the same format selection as raced: Prometheus text under
// ?format=prometheus or a text/plain Accept header, JSON otherwise.
func selfMetricsHandler(reg *obs.Registry) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Query().Get("format") == "prometheus" || obs.AcceptsText(r.Header.Get("Accept")) {
			w.Header().Set("Content-Type", obs.TextContentType)
			obs.WriteText(w, reg.Snapshot())
			return
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(obs.JSONMap(reg.Snapshot()))
	})
	return mux
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "racemon: "+format+"\n", args...)
	os.Exit(1)
}
