// Command racemon is a sidecar metrics collector for a raced fleet: it
// polls the Prometheus exposition of N /metrics endpoints (raced backends
// and/or a racefleet router) on a fixed interval, aggregates fleet-wide
// throughput from counter deltas, and writes a LOAD_*.json report — the
// collector half of the ReqBench-style load harness (ROADMAP item 1).
//
//	raced -http :7117 & raced -http :7127 &
//	racemon -target localhost:7117 -target localhost:7127 \
//	    -interval 5s -cycles 12 -o LOAD_run.json
//	racemon -check LOAD_run.json        # validate schema + monotonicity
//
// Every cycle records, per target: reachability, every counter and gauge
// by canonical name, and each histogram as {count, sum, p50, p90, p99}.
// The fleet aggregate is events/second computed from the deltas of
// raced_events_analyzed_total across all targets. The summary carries
// sustained and peak throughput, merged flush-ack quantiles, and the
// scrape-error count.
//
// -check re-reads a report and fails (non-zero exit) unless the schema is
// racemon/v1, at least one cycle was collected, and every per-target
// counter is monotone non-decreasing across cycles — the same assertions
// CI's metrics-smoke job makes.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"strings"
	"syscall"
	"time"

	"repro/internal/obs"
)

const schemaVersion = "racemon/v1"

// Report is the LOAD_*.json document.
type Report struct {
	Schema          string   `json:"schema"`
	IntervalSeconds float64  `json:"interval_seconds"`
	Targets         []string `json:"targets"`
	Cycles          []Cycle  `json:"cycles"`
	Summary         Summary  `json:"summary"`
}

// Cycle is one polling round across every target.
type Cycle struct {
	Targets map[string]TargetSample `json:"targets"`
	Fleet   FleetSample             `json:"fleet"`
}

// TargetSample is one target's scrape: flat counter/gauge values by
// canonical name and histograms reduced to count/sum/quantiles.
type TargetSample struct {
	Up         bool                 `json:"up"`
	Counters   map[string]float64   `json:"counters,omitempty"`
	Gauges     map[string]float64   `json:"gauges,omitempty"`
	Histograms map[string]HistStats `json:"histograms,omitempty"`
}

// HistStats summarizes one histogram family (samples merged across its
// label sets).
type HistStats struct {
	Count uint64  `json:"count"`
	Sum   float64 `json:"sum"`
	P50   float64 `json:"p50"`
	P90   float64 `json:"p90"`
	P99   float64 `json:"p99"`
}

// FleetSample is the cross-target aggregate for one cycle.
type FleetSample struct {
	// EventsPerSecond is the fleet-wide analysis throughput over the
	// interval ending at this cycle (0 for the first cycle — no delta yet).
	EventsPerSecond float64 `json:"events_per_second"`
	// EventsAnalyzedTotal sums raced_events_analyzed_total across targets.
	EventsAnalyzedTotal float64 `json:"events_analyzed_total"`
}

// Summary is the whole run reduced to its headline numbers.
type Summary struct {
	Cycles                   int     `json:"cycles"`
	ScrapeErrors             int     `json:"scrape_errors"`
	SustainedEventsPerSecond float64 `json:"sustained_events_per_second"`
	PeakEventsPerSecond      float64 `json:"peak_events_per_second"`
	FlushAckP50Seconds       float64 `json:"flush_ack_p50_seconds"`
	FlushAckP99Seconds       float64 `json:"flush_ack_p99_seconds"`
}

type targetFlag []string

func (t *targetFlag) String() string { return strings.Join(*t, ",") }
func (t *targetFlag) Set(v string) error {
	*t = append(*t, v)
	return nil
}

func main() {
	var targets targetFlag
	var (
		interval    = flag.Duration("interval", 5*time.Second, "polling interval")
		cycles      = flag.Int("cycles", 0, "number of polling rounds (0 runs until SIGINT/SIGTERM)")
		out         = flag.String("o", "LOAD_racemon.json", "report output path")
		check       = flag.String("check", "", "validate an existing report instead of collecting")
		metricsAddr = flag.String("metrics-addr", "", "serve racemon's own /metrics (go_* self-metrics, build info) at this address (empty disables)")
		logLevel    = flag.String("log-level", "info", "log threshold: debug, info, warn, or error")
	)
	flag.Var(&targets, "target", "metrics endpoint as host:port or URL (repeatable)")
	flag.Parse()

	level, err := obs.ParseLevel(*logLevel)
	if err != nil {
		fatalf("%v", err)
	}
	logger := obs.NewLogger(os.Stderr, level).With("component", "racemon")

	if *check != "" {
		if err := checkReport(*check); err != nil {
			fatalf("%s: %v", *check, err)
		}
		logger.Info("report valid", "path", *check)
		return
	}
	if len(targets) == 0 {
		fatalf("no targets: pass at least one -target host:port")
	}
	urls := make([]string, len(targets))
	for i, t := range targets {
		urls[i] = normalizeTarget(t)
	}
	if *metricsAddr != "" {
		reg := obs.NewRegistry()
		obs.RegisterRuntimeMetrics(reg)
		obs.RegisterBuildInfo(reg, "racemon")
		go func() {
			logger.Info("self-metrics listening", "addr", *metricsAddr)
			if err := http.ListenAndServe(*metricsAddr, selfMetricsHandler(reg)); err != nil {
				logger.Warn("self-metrics server failed", "err", err)
			}
		}()
	}

	rep := &Report{
		Schema:          schemaVersion,
		IntervalSeconds: interval.Seconds(),
		Targets:         urls,
	}
	client := &http.Client{Timeout: *interval}
	col := newCollector(rep)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)

	tick := time.NewTicker(*interval)
	defer tick.Stop()
collect:
	for i := 0; *cycles == 0 || i < *cycles; i++ {
		now := time.Now()
		samples := make(map[string]TargetSample, len(urls))
		for _, u := range urls {
			s, err := scrape(client, u)
			if err != nil {
				logger.Warn("scrape failed", "target", u, "err", err)
				rep.Summary.ScrapeErrors++
				samples[u] = TargetSample{Up: false}
				continue
			}
			samples[u] = s
		}
		cyc := col.record(now, samples)
		logger.Debug("cycle", "n", i, "events_total", cyc.Fleet.EventsAnalyzedTotal,
			"events_per_second", cyc.Fleet.EventsPerSecond)

		if *cycles != 0 && i == *cycles-1 {
			break
		}
		select {
		case <-tick.C:
		case s := <-sig:
			logger.Info("stopping", "signal", s.String())
			break collect
		}
	}

	col.finish()
	doc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fatalf("%v", err)
	}
	if err := os.WriteFile(*out, append(doc, '\n'), 0o666); err != nil {
		fatalf("%v", err)
	}
	logger.Info("report written", "path", *out, "cycles", len(rep.Cycles),
		"sustained_eps", rep.Summary.SustainedEventsPerSecond)
}

// collector folds successive polling rounds into a report, computing the
// fleet counter-delta throughput between rounds. Extracted from the polling
// loop so the delta arithmetic is unit-testable with synthetic samples.
type collector struct {
	rep        *Report
	prevTotal  float64
	prevAt     time.Time
	totalDelta float64
	firstAt    time.Time
}

func newCollector(rep *Report) *collector { return &collector{rep: rep} }

// record appends one polling round. Throughput is the delta of the summed
// raced_events_analyzed_total counters over the wall-clock gap since the
// previous round (zero for the first round — no delta yet); a negative
// delta (a restarted backend reset its counters) contributes nothing
// rather than a negative rate.
func (c *collector) record(now time.Time, samples map[string]TargetSample) Cycle {
	cyc := Cycle{Targets: samples}
	for _, s := range samples {
		cyc.Fleet.EventsAnalyzedTotal += s.Counters["raced_events_analyzed_total"]
	}
	if !c.prevAt.IsZero() {
		dt := now.Sub(c.prevAt).Seconds()
		delta := cyc.Fleet.EventsAnalyzedTotal - c.prevTotal
		if dt > 0 && delta >= 0 {
			cyc.Fleet.EventsPerSecond = delta / dt
			c.totalDelta += delta
			if cyc.Fleet.EventsPerSecond > c.rep.Summary.PeakEventsPerSecond {
				c.rep.Summary.PeakEventsPerSecond = cyc.Fleet.EventsPerSecond
			}
		}
	} else {
		c.firstAt = now
	}
	c.prevTotal, c.prevAt = cyc.Fleet.EventsAnalyzedTotal, now
	c.rep.Cycles = append(c.rep.Cycles, cyc)
	return cyc
}

// finish computes the run summary from the collected cycles.
func (c *collector) finish() {
	finalize(c.rep, c.prevAt.Sub(c.firstAt).Seconds(), c.totalDelta)
}

// selfMetricsHandler serves racemon's own registry at /metrics, honoring
// the same format selection as raced: Prometheus text under
// ?format=prometheus or a text/plain Accept header, JSON otherwise.
func selfMetricsHandler(reg *obs.Registry) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Query().Get("format") == "prometheus" || obs.AcceptsText(r.Header.Get("Accept")) {
			w.Header().Set("Content-Type", obs.TextContentType)
			obs.WriteText(w, reg.Snapshot())
			return
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(obs.JSONMap(reg.Snapshot()))
	})
	return mux
}

// normalizeTarget turns host:port into a full metrics URL.
func normalizeTarget(t string) string {
	if !strings.Contains(t, "://") {
		t = "http://" + t
	}
	return strings.TrimSuffix(t, "/")
}

// scrape fetches and reduces one target's Prometheus exposition.
func scrape(client *http.Client, base string) (TargetSample, error) {
	res, err := client.Get(base + "/metrics?format=prometheus")
	if err != nil {
		return TargetSample{}, err
	}
	defer res.Body.Close()
	if res.StatusCode != http.StatusOK {
		return TargetSample{}, fmt.Errorf("status %s", res.Status)
	}
	fams, err := obs.ParseText(res.Body)
	if err != nil {
		return TargetSample{}, err
	}
	s := TargetSample{
		Up:         true,
		Counters:   make(map[string]float64),
		Gauges:     make(map[string]float64),
		Histograms: make(map[string]HistStats),
	}
	for _, f := range fams {
		switch f.Type {
		case "histogram":
			if h := f.Histogram(); h != nil {
				s.Histograms[f.Name] = HistStats{
					Count: h.Count, Sum: h.Sum,
					P50: h.Quantile(0.50), P90: h.Quantile(0.90), P99: h.Quantile(0.99),
				}
			}
		case "gauge":
			for _, sm := range f.Samples {
				s.Gauges[sampleKey(sm)] += sm.Value
			}
		default: // counter, untyped
			for _, sm := range f.Samples {
				s.Counters[sampleKey(sm)] += sm.Value
			}
		}
	}
	return s, nil
}

// sampleKey spells a series name{labels} the way the exposition does, so
// report keys match what an operator sees when scraping by hand.
func sampleKey(s obs.Sample) string {
	if len(s.Labels) == 0 {
		return s.Name
	}
	parts := make([]string, len(s.Labels))
	for i, l := range s.Labels {
		parts[i] = fmt.Sprintf("%s=%q", l.Key, l.Value)
	}
	return s.Name + "{" + strings.Join(parts, ",") + "}"
}

// finalize computes the run summary from the collected cycles.
func finalize(rep *Report, elapsed, totalDelta float64) {
	rep.Summary.Cycles = len(rep.Cycles)
	if elapsed > 0 {
		rep.Summary.SustainedEventsPerSecond = totalDelta / elapsed
	}
	if len(rep.Cycles) == 0 {
		return
	}
	// Flush-ack quantiles from the last cycle, worst target wins (merging
	// interpolated quantiles across targets would fabricate precision).
	last := rep.Cycles[len(rep.Cycles)-1]
	for _, ts := range last.Targets {
		if h, ok := ts.Histograms["raced_flush_ack_seconds"]; ok && h.Count > 0 {
			if h.P50 > rep.Summary.FlushAckP50Seconds {
				rep.Summary.FlushAckP50Seconds = h.P50
			}
			if h.P99 > rep.Summary.FlushAckP99Seconds {
				rep.Summary.FlushAckP99Seconds = h.P99
			}
		}
	}
}

// checkReport validates a LOAD_*.json document: schema version, at least
// one cycle, and per-target counter monotonicity across cycles.
func checkReport(path string) error {
	doc, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var rep Report
	if err := json.Unmarshal(doc, &rep); err != nil {
		return fmt.Errorf("not valid JSON: %w", err)
	}
	if rep.Schema != schemaVersion {
		return fmt.Errorf("schema %q, want %q", rep.Schema, schemaVersion)
	}
	if len(rep.Targets) == 0 {
		return fmt.Errorf("no targets recorded")
	}
	if len(rep.Cycles) == 0 {
		return fmt.Errorf("no cycles collected")
	}
	if rep.Summary.Cycles != len(rep.Cycles) {
		return fmt.Errorf("summary.cycles = %d but %d cycles recorded", rep.Summary.Cycles, len(rep.Cycles))
	}
	prev := make(map[string]map[string]float64) // target → counter → last value
	for i, cyc := range rep.Cycles {
		for tgt, ts := range cyc.Targets {
			if !ts.Up {
				continue
			}
			if prev[tgt] == nil {
				prev[tgt] = make(map[string]float64)
			}
			names := make([]string, 0, len(ts.Counters))
			for name := range ts.Counters {
				names = append(names, name)
			}
			sort.Strings(names)
			for _, name := range names {
				v := ts.Counters[name]
				if last, ok := prev[tgt][name]; ok && v < last {
					return fmt.Errorf("cycle %d: %s %s went backwards (%v -> %v)", i, tgt, name, last, v)
				}
				prev[tgt][name] = v
			}
		}
	}
	return nil
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "racemon: "+format+"\n", args...)
	os.Exit(1)
}
