// Command racedetect streams a trace file through the race detection
// engine and reports the races found, optionally vindicating each one.
// The trace is never materialized: events flow from the streaming decoder
// straight into the engine, so memory goes to retained analysis metadata
// (last-access state, and critical-section logs for the predictive
// relations) rather than the event list itself. Vindication, which needs
// the full trace for witness construction, makes the engine retain it.
//
// Several analyses can run over the file in a single pass:
//
//	racedetect -analysis ST-DC trace.bin
//	racedetect -analysis FTO-HB,ST-WCP,ST-WDC trace.bin
//	racedetect -analysis ST-WDC -vindicate trace.bin
//	racedetect -list
//
// A racelog directory (the raced per-session journal / engine spill
// format, package store) is analyzed directly — recovery runs in memory,
// so a journal can be analyzed post-mortem without disturbing it:
//
//	racedetect -analysis ST-WDC /var/lib/raced/sessions/s000042/journal
//
// With -remote the trace is not analyzed in-process: it streams over the
// raced wire protocol to a detection server, and the printed report is the
// one the server computed. -resume re-attaches to a durable session a
// restarted raced recovered (the events the server already acked are
// skipped):
//
//	racedetect -remote localhost:7118 -analysis ST-WDC trace.bin
//	racedetect -remote localhost:7118 -resume s000042 trace.bin
//
// -retry makes the remote stream self-healing: on a dropped connection or
// a fleet redirect (racefleet migrating the session to another backend)
// the client reconnects with bounded exponential backoff, resumes the same
// session, and replays the unacknowledged suffix. -flush-every bounds the
// replay buffer (and the data at risk) by forcing a durability barrier
// every N events:
//
//	racedetect -remote localhost:7119 -retry -flush-every 100000 trace.bin
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"repro/internal/obs/tracing"
	"repro/internal/store"
	"repro/race"
	"repro/race/server"
)

func main() {
	var (
		names     = flag.String("analysis", "ST-DC", "comma-separated analyses to run in one pass (see -list)")
		text      = flag.Bool("text", false, "input is the text trace format")
		vind      = flag.Bool("vindicate", false, "attempt to vindicate each statically distinct race")
		online    = flag.Bool("online", false, "print races as they are detected (streaming callbacks)")
		quiet     = flag.Bool("q", false, "print only the summary lines")
		maxReport = flag.Int("max", 20, "maximum dynamic races to print per analysis")
		list      = flag.Bool("list", false, "list available analyses")
		remote    = flag.String("remote", "", "stream to a raced server at this TCP address instead of analyzing in-process")
		resume    = flag.String("resume", "", "with -remote: resume this durable session id, skipping the events the server already accepted")
		timeout   = flag.Duration("connect-timeout", 10*time.Second, "with -remote: dial + handshake timeout")
		retry     = flag.Bool("retry", false, "with -remote: reconnect and resume automatically (exponential backoff) on connection loss or fleet handoff")
		flushEach = flag.Int("flush-every", 0, "with -remote: force a flush barrier every N events (bounds the -retry replay buffer)")
		traceOn   = flag.Bool("trace", false, "with -remote: start a distributed trace for the stream and print its id (follow it in /debug/traces on the server or router)")
	)
	flag.Parse()

	if *list {
		for _, d := range race.DetectorTable() {
			tags := []string{}
			if d.Caps.Predictive {
				tags = append(tags, "predictive")
			}
			if d.Caps.NeedsVindication {
				tags = append(tags, "needs-vindication")
			}
			if d.Caps.BuildsGraph {
				tags = append(tags, "builds-graph")
			}
			fmt.Printf("%-15s %s\n", d.Name, strings.Join(tags, ","))
		}
		return
	}
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: racedetect [-analysis NAMES] [-vindicate] trace-file")
		os.Exit(2)
	}

	var src race.EventSource
	var hints race.CapacityHints
	var logDir string // non-empty when the input is a racelog directory
	if fi, err := os.Stat(flag.Arg(0)); err == nil && fi.IsDir() {
		logDir = flag.Arg(0)
		// A racelog directory: read it in place (recovery is in-memory
		// only) and use its summary as exact capacity hints.
		r, err := store.OpenRead(flag.Arg(0))
		if err != nil {
			fatalf("%v", err)
		}
		defer r.Close()
		h, _ := r.Header()
		hints = race.CapacityHints{
			Threads: h.Threads, Vars: h.Vars, Locks: h.Locks,
			Volatiles: h.Volatiles, Classes: h.Classes, Events: int(h.Events),
		}
		src = r
	} else {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fatalf("%v", err)
		}
		defer f.Close()
		if *text {
			src = race.NewTextTraceDecoder(f)
		} else {
			src = race.NewTraceDecoder(f)
		}
	}

	analyses := strings.Split(*names, ",")
	var (
		rep   *race.Report
		fed   int
		start = time.Now()
	)
	if *remote != "" {
		// Remote mode: the events stream over the wire protocol; analysis
		// and (optional) vindication happen on the server.
		if *online {
			fmt.Fprintln(os.Stderr, "racedetect: -online has no effect with -remote: the wire protocol has no callback channel (poll GET /sessions/{id}/races on the server's HTTP API instead)")
		}
		ctx, cancel := context.WithTimeout(context.Background(), *timeout)
		cfg := server.SessionConfig{Analyses: analyses, Vindicate: *vind, Hints: hints}
		var tracer *tracing.Tracer
		if *traceOn {
			tracer = tracing.New(tracing.Options{Service: "racedetect"})
		}
		var sess remoteStream
		var skip uint64
		var err error
		if *retry {
			ropts := []server.ReliableOption{server.WithRetry(server.RetryPolicy{}), server.WithTracer(tracer)}
			if *resume != "" {
				sess, skip, err = server.ResumeReliable(ctx, *remote, *resume, ropts...)
			} else {
				sess, err = server.OpenReliable(ctx, *remote, cfg, ropts...)
			}
		} else {
			var client *server.Client
			client, err = server.DialContext(ctx, *remote)
			if err != nil {
				cancel()
				fatalf("%v", err)
			}
			defer client.Close()
			client.SetTracer(tracer)
			var rsess *server.RemoteSession
			if *resume != "" {
				rsess, skip, err = client.Resume(ctx, *resume)
			} else {
				rsess, err = client.OpenContext(ctx, cfg)
			}
			sess = rsess
		}
		cancel()
		if err != nil {
			fatalf("%v", err)
		}
		fmt.Fprintf(os.Stderr, "racedetect: remote session %s (resume at offset %d)\n", sess.ID(), skip)
		if sc := sess.TraceContext(); sc.Valid() {
			fmt.Fprintf(os.Stderr, "racedetect: trace %s\n", sc.TraceID.String())
		}
		if logDir != "" && skip > 0 {
			// Racelog input: fixed-width records make the resume offset a
			// seek, not a decode-and-discard of the whole acked prefix.
			r, err := store.OpenReadAt(logDir, skip)
			if err != nil {
				fatalf("%v", err)
			}
			defer r.Close()
			src, skip = r, 0
		}
		fed, err = feedSinkFrom(sess, src, skip, *flushEach)
		if err != nil {
			fatalf("streaming trace to %s: %v", *remote, err)
		}
		if rep, err = sess.Close(); err != nil {
			fatalf("remote analysis: %v", err)
		}
	} else {
		if *resume != "" {
			fatalf("-resume requires -remote")
		}
		opts := []race.Option{race.WithAnalysisNames(analyses...), race.WithCapacityHints(hints)}
		if *vind {
			opts = append(opts, race.WithVindication())
		}
		if *online {
			opts = append(opts, race.WithOnRace(func(r race.RaceInfo) {
				kind := "read"
				if r.Write {
					kind = "write"
				}
				fmt.Printf("online: %s race on var %d at loc %d (event %d, %s)\n",
					r.Analysis, r.Var, r.Loc, r.Index, kind)
			}))
		}
		eng, err := race.NewEngine(opts...)
		if err != nil {
			fatalf("%v", err)
		}
		if err := eng.FeedSource(src); err != nil {
			fatalf("streaming trace: %v", err)
		}
		if rep, err = eng.Close(); err != nil {
			fatalf("%v", err)
		}
		fed = eng.Fed()
	}
	dur := time.Since(start)

	// One pass, one throughput: the stream is fed to every analysis
	// together, so per-analysis throughput is not separable here.
	fmt.Printf("%d events through %d analyses in one pass (%.2f Mevents/s combined)\n",
		fed, len(rep.Analyses()), float64(fed)/1e6/dur.Seconds())
	for _, name := range rep.Analyses() {
		sub, _ := rep.ByAnalysis(name)
		fmt.Printf("%s: %d statically distinct races, %d dynamic races\n",
			name, sub.Static(), sub.Dynamic())
		if *quiet {
			continue
		}
		printed := 0
		for _, r := range sub.Races() {
			if printed >= *maxReport {
				fmt.Printf("  ... %d more dynamic races\n", sub.Dynamic()-printed)
				break
			}
			kind := "read"
			if r.Write {
				kind = "write"
			}
			fmt.Printf("  race on var %d at loc %d (event %d, %s)", r.Var, r.Loc, r.Index, kind)
			if res, ok := sub.Vindication(r.Index); ok {
				if res.Vindicated {
					fmt.Printf("  [vindicated: witness of %d events]", len(res.Witness))
				} else {
					fmt.Printf("  [unverified: %s]", res.Reason)
				}
			}
			fmt.Println()
			printed++
		}
	}
}

// remoteStream is the common surface of *server.RemoteSession and
// *server.ReliableSession that the remote path drives: an EventSink plus
// the wire flush barrier.
type remoteStream interface {
	race.EventSink
	ID() string
	Flush() error
	TraceContext() tracing.SpanContext
}

// feedSinkFrom drains an event source into an event sink (the remote
// session), skipping the first skip events — the prefix a resumed session
// has already accepted — and counting the events fed. Racelog inputs seek
// instead (store.OpenReadAt); flat trace files pay a decode-and-discard
// of the prefix, bounded by the decoder's tens-of-Mevents/sec. A positive
// flushEvery inserts a flush barrier every that many fed events.
func feedSinkFrom(sink remoteStream, src race.EventSource, skip uint64, flushEvery int) (int, error) {
	n := 0
	for {
		ev, err := src.Next()
		if err == io.EOF {
			return n, nil
		}
		if err != nil {
			return n, err
		}
		if skip > 0 {
			skip--
			continue
		}
		if err := sink.Feed(ev); err != nil {
			return n, err
		}
		n++
		if flushEvery > 0 && n%flushEvery == 0 {
			if err := sink.Flush(); err != nil {
				return n, err
			}
		}
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "racedetect: "+format+"\n", args...)
	os.Exit(1)
}
