// Command racedetect streams a trace file through the race detection
// engine and reports the races found, optionally vindicating each one.
// The trace is never materialized: events flow from the streaming decoder
// straight into the engine, so memory goes to retained analysis metadata
// (last-access state, and critical-section logs for the predictive
// relations) rather than the event list itself. Vindication, which needs
// the full trace for witness construction, makes the engine retain it.
//
// Several analyses can run over the file in a single pass:
//
//	racedetect -analysis ST-DC trace.bin
//	racedetect -analysis FTO-HB,ST-WCP,ST-WDC trace.bin
//	racedetect -analysis ST-WDC -vindicate trace.bin
//	racedetect -list
//
// With -remote the trace is not analyzed in-process: it streams over the
// raced wire protocol to a detection server, and the printed report is the
// one the server computed.
//
//	racedetect -remote localhost:7118 -analysis ST-WDC trace.bin
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"repro/race"
	"repro/race/server"
)

func main() {
	var (
		names     = flag.String("analysis", "ST-DC", "comma-separated analyses to run in one pass (see -list)")
		text      = flag.Bool("text", false, "input is the text trace format")
		vind      = flag.Bool("vindicate", false, "attempt to vindicate each statically distinct race")
		online    = flag.Bool("online", false, "print races as they are detected (streaming callbacks)")
		quiet     = flag.Bool("q", false, "print only the summary lines")
		maxReport = flag.Int("max", 20, "maximum dynamic races to print per analysis")
		list      = flag.Bool("list", false, "list available analyses")
		remote    = flag.String("remote", "", "stream to a raced server at this TCP address instead of analyzing in-process")
	)
	flag.Parse()

	if *list {
		for _, d := range race.DetectorTable() {
			tags := []string{}
			if d.Caps.Predictive {
				tags = append(tags, "predictive")
			}
			if d.Caps.NeedsVindication {
				tags = append(tags, "needs-vindication")
			}
			if d.Caps.BuildsGraph {
				tags = append(tags, "builds-graph")
			}
			fmt.Printf("%-15s %s\n", d.Name, strings.Join(tags, ","))
		}
		return
	}
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: racedetect [-analysis NAMES] [-vindicate] trace-file")
		os.Exit(2)
	}

	f, err := os.Open(flag.Arg(0))
	if err != nil {
		fatalf("%v", err)
	}
	defer f.Close()

	var src race.EventSource
	if *text {
		src = race.NewTextTraceDecoder(f)
	} else {
		src = race.NewTraceDecoder(f)
	}

	analyses := strings.Split(*names, ",")
	var (
		rep   *race.Report
		fed   int
		start = time.Now()
	)
	if *remote != "" {
		// Remote mode: the events stream over the wire protocol; analysis
		// and (optional) vindication happen on the server.
		if *online {
			fmt.Fprintln(os.Stderr, "racedetect: -online has no effect with -remote: the wire protocol has no callback channel (poll GET /sessions/{id}/races on the server's HTTP API instead)")
		}
		client, err := server.Dial(*remote)
		if err != nil {
			fatalf("%v", err)
		}
		defer client.Close()
		sess, err := client.Open(server.SessionConfig{Analyses: analyses, Vindicate: *vind})
		if err != nil {
			fatalf("%v", err)
		}
		fed, err = feedSink(sess, src)
		if err != nil {
			fatalf("streaming trace to %s: %v", *remote, err)
		}
		if rep, err = sess.Close(); err != nil {
			fatalf("remote analysis: %v", err)
		}
	} else {
		opts := []race.Option{race.WithAnalysisNames(analyses...)}
		if *vind {
			opts = append(opts, race.WithVindication())
		}
		if *online {
			opts = append(opts, race.WithOnRace(func(r race.RaceInfo) {
				kind := "read"
				if r.Write {
					kind = "write"
				}
				fmt.Printf("online: %s race on var %d at loc %d (event %d, %s)\n",
					r.Analysis, r.Var, r.Loc, r.Index, kind)
			}))
		}
		eng, err := race.NewEngine(opts...)
		if err != nil {
			fatalf("%v", err)
		}
		if err := eng.FeedSource(src); err != nil {
			fatalf("streaming trace: %v", err)
		}
		if rep, err = eng.Close(); err != nil {
			fatalf("%v", err)
		}
		fed = eng.Fed()
	}
	dur := time.Since(start)

	// One pass, one throughput: the stream is fed to every analysis
	// together, so per-analysis throughput is not separable here.
	fmt.Printf("%d events through %d analyses in one pass (%.2f Mevents/s combined)\n",
		fed, len(rep.Analyses()), float64(fed)/1e6/dur.Seconds())
	for _, name := range rep.Analyses() {
		sub, _ := rep.ByAnalysis(name)
		fmt.Printf("%s: %d statically distinct races, %d dynamic races\n",
			name, sub.Static(), sub.Dynamic())
		if *quiet {
			continue
		}
		printed := 0
		for _, r := range sub.Races() {
			if printed >= *maxReport {
				fmt.Printf("  ... %d more dynamic races\n", sub.Dynamic()-printed)
				break
			}
			kind := "read"
			if r.Write {
				kind = "write"
			}
			fmt.Printf("  race on var %d at loc %d (event %d, %s)", r.Var, r.Loc, r.Index, kind)
			if res, ok := sub.Vindication(r.Index); ok {
				if res.Vindicated {
					fmt.Printf("  [vindicated: witness of %d events]", len(res.Witness))
				} else {
					fmt.Printf("  [unverified: %s]", res.Reason)
				}
			}
			fmt.Println()
			printed++
		}
	}
}

// feedSink drains an event source into an event sink (the remote session),
// counting the events fed.
func feedSink(sink race.EventSink, src race.EventSource) (int, error) {
	n := 0
	for {
		ev, err := src.Next()
		if err == io.EOF {
			return n, nil
		}
		if err != nil {
			return n, err
		}
		if err := sink.Feed(ev); err != nil {
			return n, err
		}
		n++
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "racedetect: "+format+"\n", args...)
	os.Exit(1)
}
