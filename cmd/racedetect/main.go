// Command racedetect runs a race detection analysis over a trace file and
// reports the races found, optionally vindicating each one.
//
// Usage:
//
//	racedetect -analysis ST-DC trace.bin
//	racedetect -analysis FTO-HB -text trace.txt
//	racedetect -analysis ST-WDC -vindicate trace.bin
//	racedetect -list
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/race"
)

func main() {
	var (
		name      = flag.String("analysis", "ST-DC", "analysis to run (see -list)")
		text      = flag.Bool("text", false, "input is the text trace format")
		vind      = flag.Bool("vindicate", false, "attempt to vindicate each statically distinct race")
		quiet     = flag.Bool("q", false, "print only the summary line")
		maxReport = flag.Int("max", 20, "maximum dynamic races to print")
		list      = flag.Bool("list", false, "list available analyses")
	)
	flag.Parse()

	if *list {
		for _, n := range race.Detectors() {
			fmt.Println(n)
		}
		return
	}
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: racedetect [-analysis NAME] [-vindicate] trace-file")
		os.Exit(2)
	}

	f, err := os.Open(flag.Arg(0))
	if err != nil {
		fatalf("%v", err)
	}
	defer f.Close()
	var tr *race.Trace
	if *text {
		tr, err = race.ReadTraceText(f)
	} else {
		tr, err = race.ReadTrace(f)
	}
	if err != nil {
		fatalf("reading trace: %v", err)
	}
	if err := race.CheckTrace(tr); err != nil {
		fatalf("ill-formed trace: %v", err)
	}

	start := time.Now()
	rep, err := race.AnalyzeByName(tr, *name)
	if err != nil {
		fatalf("%v", err)
	}
	dur := time.Since(start)

	fmt.Printf("%s: %d events, %d statically distinct races, %d dynamic races (%.2f Mevents/s)\n",
		*name, tr.Len(), rep.Static(), rep.Dynamic(),
		float64(tr.Len())/1e6/dur.Seconds())
	if *quiet {
		return
	}

	seen := make(map[uint32]bool)
	printed := 0
	for _, r := range rep.Races() {
		if printed >= *maxReport {
			fmt.Printf("  ... %d more dynamic races\n", rep.Dynamic()-printed)
			break
		}
		kind := "read"
		if r.Write {
			kind = "write"
		}
		fmt.Printf("  race on var %d at loc %d (event %d, %s)", r.Var, r.Loc, r.Index, kind)
		if *vind && !seen[r.Loc] {
			seen[r.Loc] = true
			res := race.Vindicate(tr, r.Index)
			if res.Vindicated {
				fmt.Printf("  [vindicated: witness of %d events]", len(res.Witness))
			} else {
				fmt.Printf("  [unverified: %s]", res.Reason)
			}
		}
		fmt.Println()
		printed++
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "racedetect: "+format+"\n", args...)
	os.Exit(1)
}
