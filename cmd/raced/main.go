// Command raced is the race-detection ingestion server: a network front
// end over race/server that lets many instrumented programs stream traces
// concurrently into per-session analysis engines and query the reports.
//
//	raced                                  # HTTP on :7117, wire TCP on :7118
//	raced -http :8080 -tcp :8081
//	raced -max-sessions 256 -idle 2m
//	raced -data-dir /var/lib/raced         # durable sessions (racelog journals)
//
// With -data-dir every session journals its events to a racelog before
// analysis, flush acks mean "analyzed and durable", and a restarted raced
// rebuilds the sessions a previous process left open — clients resume at
// the acked offset (racedetect -resume, or server.Client.Resume). On
// SIGINT/SIGTERM the server shuts down gracefully: every session queue
// drains and every journal is synced and sealed before the process exits.
//
// Quick start against a generated trace:
//
//	tracegen -program avrora -scale 40000 -o avrora.trace
//	raced &
//	curl -s --data-binary @avrora.trace \
//	    'localhost:7117/ingest?analysis=FTO-HB,ST-WDC' | jq .
//	curl -s localhost:7117/metrics | jq .
//
// Streaming clients use the raw-TCP wire protocol (racedetect -remote, or
// race/server.Dial from instrumented programs).
//
// In a fleet (cmd/racefleet in front of several raced instances), the
// router drives raced through its admin surface: GET /healthz is a
// readiness probe (503 while draining or with an unwritable data dir,
// plus session-pool occupancy), POST /admin/drain stops new-session
// admission, and POST /admin/sessions/{id}/suspend + .../recover are the
// two halves of journal-based session migration.
package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/race/server"
)

func main() {
	var (
		httpAddr = flag.String("http", ":7117", "HTTP API listen address (empty disables)")
		tcpAddr  = flag.String("tcp", ":7118", "wire-protocol TCP listen address (empty disables)")
		maxSess  = flag.Int("max-sessions", 64, "maximum concurrently open sessions")
		queue    = flag.Int("queue", 32, "per-session pending-batch queue depth")
		idle     = flag.Duration("idle", 5*time.Minute, "idle-session eviction timeout (negative disables)")
		dataDir  = flag.String("data-dir", "", "durable-session directory: journal every session to a racelog and resume open sessions on restart (empty keeps sessions in memory)")
	)
	flag.Parse()
	if *httpAddr == "" && *tcpAddr == "" {
		fatalf("nothing to serve: both -http and -tcp are empty")
	}

	srv := server.New(server.Config{
		MaxSessions: *maxSess,
		QueueDepth:  *queue,
		IdleTimeout: *idle,
		DataDir:     *dataDir,
	})
	if *dataDir != "" {
		resumed, err := srv.Recover()
		if err != nil {
			fatalf("recovering sessions from %s: %v", *dataDir, err)
		}
		fmt.Fprintf(os.Stderr, "raced: data dir %s (%d sessions resumed)\n", *dataDir, resumed)
	}

	errc := make(chan error, 2)
	if *tcpAddr != "" {
		lis, err := net.Listen("tcp", *tcpAddr)
		if err != nil {
			fatalf("%v", err)
		}
		fmt.Fprintf(os.Stderr, "raced: wire protocol on %s\n", lis.Addr())
		go func() { errc <- srv.ServeTCP(lis) }()
	}
	if *httpAddr != "" {
		lis, err := net.Listen("tcp", *httpAddr)
		if err != nil {
			fatalf("%v", err)
		}
		fmt.Fprintf(os.Stderr, "raced: HTTP API on %s\n", lis.Addr())
		hs := &http.Server{Handler: srv.Handler()}
		go func() { errc <- hs.Serve(lis) }()
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		if err != nil {
			fatalf("%v", err)
		}
	case s := <-sig:
		// Graceful: drain every session queue and sync + seal every
		// journal before exiting, so a -data-dir restart resumes cleanly.
		fmt.Fprintf(os.Stderr, "raced: %v: shutting down (%d sessions)\n", s, srv.ActiveSessions())
		srv.Shutdown()
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "raced: "+format+"\n", args...)
	os.Exit(1)
}
