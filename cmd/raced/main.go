// Command raced is the race-detection ingestion server: a network front
// end over race/server that lets many instrumented programs stream traces
// concurrently into per-session analysis engines and query the reports.
//
//	raced                                  # HTTP on :7117, wire TCP on :7118
//	raced -http :8080 -tcp :8081
//	raced -max-sessions 256 -idle 2m
//	raced -data-dir /var/lib/raced         # durable sessions (racelog journals)
//
// With -data-dir every session journals its events to a racelog before
// analysis, flush acks mean "analyzed and durable", and a restarted raced
// rebuilds the sessions a previous process left open — clients resume at
// the acked offset (racedetect -resume, or server.Client.Resume). On
// SIGINT/SIGTERM the server shuts down gracefully: every session queue
// drains and every journal is synced and sealed before the process exits.
//
// Quick start against a generated trace:
//
//	tracegen -program avrora -scale 40000 -o avrora.trace
//	raced &
//	curl -s --data-binary @avrora.trace \
//	    'localhost:7117/ingest?analysis=FTO-HB,ST-WDC' | jq .
//	curl -s localhost:7117/metrics | jq .
//	curl -s 'localhost:7117/metrics?format=prometheus'   # text exposition
//
// Observability: GET /metrics serves the canonical raced_* metric catalog
// (plus go_* runtime self-metrics and raced_build_info) as JSON, or as
// Prometheus text exposition v0.0.4 with ?format=prometheus or an Accept
// header asking for text/plain. -debug-addr starts an optional
// net/http/pprof listener; -log-level sets the structured-log (log/slog)
// threshold. -trace records spans for every session, flush, and recovery
// (GET /debug/traces, ?format=chrome for Perfetto); -trace-slow logs any
// trace slower than a threshold with a per-span breakdown.
//
// Streaming clients use the raw-TCP wire protocol (racedetect -remote, or
// race/server.Dial from instrumented programs).
//
// In a fleet (cmd/racefleet in front of several raced instances), the
// router drives raced through its admin surface: GET /healthz is a
// readiness probe (503 while draining or with an unwritable data dir,
// plus session-pool occupancy), POST /admin/drain stops new-session
// admission, and POST /admin/sessions/{id}/suspend + .../recover are the
// two halves of journal-based session migration.
package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof on DefaultServeMux (-debug-addr)
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/obs"
	"repro/internal/obs/tracing"
	"repro/race/server"
)

func main() {
	var (
		httpAddr  = flag.String("http", ":7117", "HTTP API listen address (empty disables)")
		tcpAddr   = flag.String("tcp", ":7118", "wire-protocol TCP listen address (empty disables)")
		maxSess   = flag.Int("max-sessions", 64, "maximum concurrently open sessions")
		queue     = flag.Int("queue", 32, "per-session pending-batch queue depth")
		idle      = flag.Duration("idle", 5*time.Minute, "idle-session eviction timeout (negative disables)")
		dataDir   = flag.String("data-dir", "", "durable-session directory: journal every session to a racelog and resume open sessions on restart (empty keeps sessions in memory)")
		ioTimeout = flag.Duration("io-timeout", 0, "cut wire connections making no read or write progress for this long (0 disables)")
		debugAddr = flag.String("debug-addr", "", "net/http/pprof listen address (empty disables)")
		logLevel  = flag.String("log-level", "info", "log threshold: debug, info, warn, or error")
		trace     = flag.Bool("trace", false, "record spans for every session, flush, and recovery (GET /debug/traces)")
		traceSlow = flag.Duration("trace-slow", 0, "log any trace whose root span exceeds this duration, with a per-span breakdown (implies -trace)")
	)
	flag.Parse()
	if *httpAddr == "" && *tcpAddr == "" {
		fatalf("nothing to serve: both -http and -tcp are empty")
	}
	level, err := obs.ParseLevel(*logLevel)
	if err != nil {
		fatalf("%v", err)
	}
	logger := obs.NewLogger(os.Stderr, level).With("component", "raced")

	var tracer *tracing.Tracer
	if *trace || *traceSlow > 0 {
		tracer = tracing.New(tracing.Options{
			Service:       "raced",
			SlowThreshold: *traceSlow,
			Logger:        logger,
		})
		logger.Info("tracing enabled", "slow_threshold", traceSlow.String())
	}

	srv := server.New(server.Config{
		MaxSessions: *maxSess,
		QueueDepth:  *queue,
		IdleTimeout: *idle,
		DataDir:     *dataDir,
		IOTimeout:   *ioTimeout,
		Logger:      logger,
		Tracer:      tracer,
	})
	obs.RegisterRuntimeMetrics(srv.Registry())
	obs.RegisterBuildInfo(srv.Registry(), "raced")
	if *dataDir != "" {
		resumed, err := srv.Recover()
		if err != nil {
			fatalf("recovering sessions from %s: %v", *dataDir, err)
		}
		logger.Info("data dir opened", "dir", *dataDir, "sessions_resumed", resumed)
	}

	errc := make(chan error, 3)
	if *tcpAddr != "" {
		lis, err := net.Listen("tcp", *tcpAddr)
		if err != nil {
			fatalf("%v", err)
		}
		logger.Info("wire protocol listening", "addr", lis.Addr().String())
		go func() { errc <- srv.ServeTCP(lis) }()
	}
	if *httpAddr != "" {
		lis, err := net.Listen("tcp", *httpAddr)
		if err != nil {
			fatalf("%v", err)
		}
		logger.Info("HTTP API listening", "addr", lis.Addr().String())
		hs := &http.Server{Handler: srv.Handler()}
		go func() { errc <- hs.Serve(lis) }()
	}
	if *debugAddr != "" {
		lis, err := net.Listen("tcp", *debugAddr)
		if err != nil {
			fatalf("%v", err)
		}
		logger.Info("pprof debug listening", "addr", lis.Addr().String())
		// nil handler = DefaultServeMux, where net/http/pprof registered.
		go func() { errc <- http.Serve(lis, nil) }()
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		if err != nil {
			fatalf("%v", err)
		}
	case s := <-sig:
		// Graceful: drain every session queue and sync + seal every
		// journal before exiting, so a -data-dir restart resumes cleanly.
		logger.Info("shutting down", "signal", s.String(), "sessions", srv.ActiveSessions())
		srv.Shutdown()
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "raced: "+format+"\n", args...)
	os.Exit(1)
}
