// Command racebench regenerates the evaluation tables and figures of
// "SmartTrack: Efficient Predictive Race Detection" over the synthetic
// DaCapo-calibrated workloads.
//
// Usage:
//
//	racebench -table 5 -scale 4000 -trials 1
//	racebench -table all -trials 5
//	racebench -figures
//	racebench -table 7 -programs xalan,pmd
//	racebench -json BENCH_results.json -scale 40000
//
// The -json mode writes the full table measurements plus the single-
// analysis costs and the multi-analysis fan-out throughput comparison to
// the named file (schema "racebench/v1", documented in internal/bench) —
// the machine-readable perf trajectory the checked-in BENCH_*.json files
// track across PRs.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/bench"
)

func main() {
	var (
		table    = flag.String("table", "", "table to regenerate: 1..12, or \"all\"")
		figures  = flag.Bool("figures", false, "regenerate Figures 1–4 as analysis verdicts")
		scale    = flag.Int("scale", 4000, "divide the paper's event counts by this factor")
		trials   = flag.Int("trials", 1, "trials per measurement (appendix tables use 5+)")
		seed     = flag.Int64("seed", 1, "base workload seed")
		programs = flag.String("programs", "", "comma-separated workload subset (default: all ten)")
		jsonOut  = flag.String("json", "", "write machine-readable results (racebench/v1 schema) to this file")
		par      = flag.Int("parallelism", 0, "fan-out parallelism for -json throughput (0 = GOMAXPROCS)")
		batch    = flag.Int("batch", 0, "fan-out batch size for -json throughput (0 = engine default)")
	)
	flag.Parse()

	cfg := bench.Config{ScaleDiv: *scale, Trials: *trials, Seed: *seed}
	if *programs != "" {
		cfg.Programs = strings.Split(*programs, ",")
	}

	if *jsonOut != "" {
		rep, err := bench.BuildJSON(cfg, *par, *batch)
		if err != nil {
			fmt.Fprintf(os.Stderr, "racebench: %v\n", err)
			os.Exit(1)
		}
		f, err := os.Create(*jsonOut)
		if err != nil {
			fmt.Fprintf(os.Stderr, "racebench: %v\n", err)
			os.Exit(1)
		}
		if err := bench.WriteJSON(f, rep); err == nil {
			err = f.Close()
		} else {
			f.Close()
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "racebench: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("racebench: wrote %s (fan-out speedup %.2fx at parallelism %d on %d CPU(s))\n",
			*jsonOut, rep.Fanout.Speedup, rep.Fanout.Parallelism, rep.CPUs)
	}

	if *figures {
		fmt.Print(bench.RenderFigures())
	}
	if *table == "" && !*figures && *jsonOut == "" {
		flag.Usage()
		os.Exit(2)
	}
	if *table == "" {
		return
	}

	render := func(id string) {
		switch id {
		case "1":
			fmt.Println(bench.RenderTable1())
		case "2":
			fmt.Println(bench.RenderTable2(cfg))
		case "3":
			fmt.Println(bench.RenderTable3(cfg, false))
		case "4":
			fmt.Println(bench.RenderTable4(cfg))
		case "5":
			fmt.Println(bench.RenderTable5(cfg, false))
		case "6":
			fmt.Println(bench.RenderTable6(cfg, false))
		case "7":
			fmt.Println(bench.RenderTable7(cfg, false))
		case "8":
			fmt.Println(bench.RenderTable3(cfg, true))
		case "9":
			fmt.Println(bench.RenderTable5(cfg, true))
		case "10":
			fmt.Println(bench.RenderTable6(cfg, true))
		case "11":
			fmt.Println(bench.RenderTable7(cfg, true))
		case "12":
			fmt.Println(bench.RenderTable12(cfg))
		default:
			fmt.Fprintf(os.Stderr, "racebench: unknown table %q\n", id)
			os.Exit(2)
		}
	}

	if *table == "all" {
		for i := 1; i <= 12; i++ {
			render(fmt.Sprint(i))
		}
		return
	}
	render(*table)
}
