// Command raceload is the generator half of the capacity harness: an
// open-loop load generator that drives the real wire client against a
// live raced or racefleet target, measures client-side SLOs (session-open
// latency, flush-ack RTT, close-to-report latency), scrapes the servers'
// /metrics inline, and writes one raceload/v1 LOAD_*.json correlating
// both views — including the backpressure onset: the first ramp step
// where client flush-ack p99 crosses the SLO or typed rejections appear.
//
//	raced -tcp :7116 -http :7117 &
//	raceload -addr localhost:7116 -target localhost:7117 \
//	    -start-rps 2 -step-rps 2 -target-rps 12 -step-every 10s \
//	    -verify-sample 5 -o LOAD_run.json
//	racemon -check LOAD_run.json
//
// -search replaces the ramp with a saturation search: probe flat arrival
// rates (doubling climb, then bisection) until the maximum rate that
// holds the SLO is bracketed.
//
// Exit status is the harness contract: non-zero if any error was
// unclassified (a PR 8 typed-error violation) or any -verify-sample
// session's report differed from a batch re-analysis of the same trace.
// Typed rejections and SLO breaches are *data*, not failures — a load
// test that finds the server's limit has succeeded.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/obs"
	"repro/race/loadgen"
)

type listFlag []string

func (t *listFlag) String() string { return strings.Join(*t, ",") }
func (t *listFlag) Set(v string) error {
	*t = append(*t, v)
	return nil
}

func main() {
	var targets, analyses listFlag
	var (
		addr           = flag.String("addr", "localhost:7116", "wire (TCP) address of raced or racefleet")
		scrapeInterval = flag.Duration("scrape-interval", time.Second, "embedded collector polling interval")
		startRPS       = flag.Float64("start-rps", 0, "ramp starting session-arrival rate (0 = flat at -target-rps)")
		stepRPS        = flag.Float64("step-rps", 0, "ramp increment per step")
		targetRPS      = flag.Float64("target-rps", 10, "final (held) session-arrival rate")
		stepEvery      = flag.Duration("step-every", 5*time.Second, "duration of each ramp step")
		duration       = flag.Duration("duration", 30*time.Second, "total run length including the ramp")
		sessionEvents  = flag.Int("session-events", 20000, "events per session trace")
		eventRate      = flag.Float64("event-rate", 0, "per-session event pacing in events/second (0 = unpaced)")
		flushEvery     = flag.Int("flush-every", 4096, "events between flush barriers")
		batch          = flag.Int("batch", 0, "wire client batch size (0 = client default)")
		retry          = flag.Bool("retry", false, "enable reconnect backoff on the wire client")
		maxInFlight    = flag.Int("max-inflight", 512, "max concurrent sessions; excess arrivals are dropped and counted")
		mixSpec        = flag.String("mix", "", "workload mix, e.g. dacapo:avrora=2,channels=1,random=1 (empty = default mix)")
		seed           = flag.Int64("seed", 1, "seed for trace generation and mix draws")
		sloFlushP99    = flag.Duration("slo-flush-p99", 250*time.Millisecond, "client flush-ack p99 SLO for onset detection and -search")
		verifySample   = flag.Int("verify-sample", 0, "re-run N sampled sessions through batch analysis and byte-compare reports")
		search         = flag.Bool("search", false, "saturation search: probe flat rates until the max sustainable RPS is bracketed")
		searchWindow   = flag.Duration("search-window", 10*time.Second, "flat-rate hold per search probe")
		searchMax      = flag.Float64("search-max", 4096, "search rate ceiling (safety rail)")
		out            = flag.String("o", "LOAD_raceload.json", "report output path")
		logLevel       = flag.String("log-level", "info", "log threshold: debug, info, warn, or error")
	)
	flag.Var(&targets, "target", "metrics endpoint as host:port or URL (repeatable)")
	flag.Var(&analyses, "analysis", "analysis name each session runs (repeatable; empty = server default)")
	flag.Parse()

	level, err := obs.ParseLevel(*logLevel)
	if err != nil {
		fatalf("%v", err)
	}
	logger := obs.NewLogger(os.Stderr, level).With("component", "raceload")

	var mix []loadgen.MixEntry
	if *mixSpec != "" {
		mix, err = loadgen.ParseMix(*mixSpec)
		if err != nil {
			fatalf("%v", err)
		}
	}
	cfg := loadgen.Config{
		Addr:           *addr,
		Targets:        targets,
		ScrapeInterval: *scrapeInterval,
		StartRPS:       *startRPS,
		StepRPS:        *stepRPS,
		TargetRPS:      *targetRPS,
		StepEvery:      *stepEvery,
		Duration:       *duration,
		SessionEvents:  *sessionEvents,
		EventRate:      *eventRate,
		FlushEvery:     *flushEvery,
		BatchSize:      *batch,
		Retry:          *retry,
		MaxInFlight:    *maxInFlight,
		Mix:            mix,
		Analyses:       analyses,
		Seed:           *seed,
		SLOFlushP99:    *sloFlushP99,
		VerifySample:   *verifySample,
		Logger:         logger,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	var rep *loadgen.Report
	if *search {
		var res *loadgen.SearchResult
		rep, res, err = loadgen.Search(ctx, cfg, loadgen.SearchConfig{
			Window: *searchWindow,
			MaxRPS: *searchMax,
		})
		if err == nil {
			logger.Info("search done", "max_sustainable_rps", res.MaxSustainableRPS,
				"probes", len(res.Probes))
		}
	} else {
		rep, err = loadgen.Run(ctx, cfg)
	}
	if err != nil {
		fatalf("%v", err)
	}

	doc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fatalf("%v", err)
	}
	if err := os.WriteFile(*out, append(doc, '\n'), 0o666); err != nil {
		fatalf("%v", err)
	}

	g := rep.Generator
	logger.Info("report written", "path", *out,
		"launched", g.SessionsLaunched, "completed", g.SessionsCompleted,
		"failed", g.SessionsFailed, "skipped", g.SessionsSkipped,
		"events_sent", g.EventsSent,
		"flush_p50_ms", g.FlushAckP50*1e3, "flush_p99_ms", g.FlushAckP99*1e3,
		"sustained_eps", rep.Summary.SustainedEventsPerSecond,
		"peak_eps", rep.Summary.PeakEventsPerSecond)
	if on := g.BackpressureOnset; on != nil {
		logger.Info("backpressure onset", "step", on.StepIndex, "rps", on.TargetRPS,
			"reason", on.Reason, "flush_p99_ms", on.FlushAckP99*1e3, "rejections", on.Rejections)
	}

	// The harness contract: untyped errors and report mismatches are
	// failures of the system (or the harness), never acceptable load results.
	exit := 0
	if g.Unclassified > 0 {
		logger.Error("unclassified errors (typed-error contract violation)",
			"count", g.Unclassified, "samples", strings.Join(g.UnclassifiedSamples, "; "))
		exit = 1
	}
	if v := g.Verify; v != nil && v.Matched != v.Sampled {
		logger.Error("sampled report verification failed",
			"sampled", v.Sampled, "matched", v.Matched, "mismatched", strings.Join(v.Mismatched, "; "))
		exit = 1
	}
	os.Exit(exit)
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "raceload: "+format+"\n", args...)
	os.Exit(1)
}
