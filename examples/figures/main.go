// Figures: run every analysis in the paper's Table 1 over the example
// executions of Figures 1–4 and print which relations detect each race,
// plus the vindication verdicts — the executable form of the paper's
// worked examples.
//
//	go run ./examples/figures
package main

import (
	"fmt"

	"repro/internal/bench"
)

func main() {
	fmt.Print(bench.RenderFigures())
	fmt.Println("Reading guide:")
	fmt.Println("  figure1  — predictable race missed by HB, found by WCP/DC/WDC; vindicates.")
	fmt.Println("  figure2  — DC-race that is not a WCP-race (WCP composes with HB); vindicates.")
	fmt.Println("  figure3  — WDC-only false race (rule (b) orders it); vindication rejects.")
	fmt.Println("  figure4* — SmartTrack mechanics (CS lists, [Read Share], extra metadata);")
	fmt.Println("             no races anywhere, and SmartTrack agrees with FTO exactly.")
}
