// Pipeline: a fork/join worker pool with a volatile (atomic) stop flag,
// instrumented with race.Runtime and analyzed ONLINE: a streaming Engine
// attached to the Runtime consumes events as the program executes —
// record-and-analyze in one pass, the way the paper's analyses run inside
// RoadRunner — with four analyses fanned out over the single stream. The
// work-item hand-offs are properly synchronized and stay silent under
// every analysis; a results counter that workers bump without a lock
// races, and every analysis flags it online, while the pool is still
// processing items.
//
//	go run ./examples/pipeline
package main

import (
	"fmt"
	"log"
	"sync"
	"sync/atomic"

	"repro/race"
)

const workers = 3

func main() {
	eng, err := race.NewEngine(
		race.WithAnalyses(
			race.Cell{Relation: race.HB, Level: race.FTO},
			race.Cell{Relation: race.WCP, Level: race.SmartTrack},
			race.Cell{Relation: race.DC, Level: race.SmartTrack},
			race.Cell{Relation: race.WDC, Level: race.SmartTrack},
		),
		race.WithOnRace(func(r race.RaceInfo) {
			fmt.Printf("online: %s flags var %d while the pipeline is still running\n",
				r.Analysis, r.Var)
		}),
	)
	if err != nil {
		log.Fatal(err)
	}
	rt := race.NewRuntime(race.WithEngineAttached(eng))
	main := rt.Main()

	var (
		queueMu  sync.Mutex
		queue    []int
		stop     atomic.Bool
		results  int // BUG: updated by workers without a lock
		resultMu sync.Mutex
	)

	// Seed the queue from the main thread before forking — ordered by fork.
	rt.Write(main, &queue)
	queue = append(queue, 1, 2, 3, 4, 5, 6)

	var wg sync.WaitGroup
	tids := make([]race.Tid, workers)
	turn := make(chan int, 1) // deterministic demo schedule (not program sync)
	for w := 0; w < workers; w++ {
		tids[w] = rt.Go(main)
		wg.Add(1)
		go func(me race.Tid, w int) {
			defer wg.Done()
			for range [2]struct{}{} {
				<-turn
				if stop.Load() {
					rt.VolatileRead(me, &stop)
					turn <- w + 1
					return
				}
				rt.VolatileRead(me, &stop)
				// Properly locked queue pop: never races.
				rt.Locked(me, &queueMu, func() {
					queueMu.Lock()
					rt.Read(me, &queue)
					rt.Write(me, &queue)
					if len(queue) > 0 {
						queue = queue[1:]
					}
					queueMu.Unlock()
				})
				// The bug: the shared results counter is read-modify-written
				// without resultMu.
				rt.Read(me, &results)
				rt.Write(me, &results)
				results++
				turn <- w + 1
			}
		}(tids[w], w)
	}
	turn <- 0
	wg.Wait()
	<-turn

	rt.VolatileWrite(main, &stop)
	stop.Store(true)
	for _, t := range tids {
		rt.Join(main, t)
	}
	rt.Locked(main, &resultMu, func() {
		resultMu.Lock()
		rt.Read(main, &results)
		fmt.Printf("pipeline processed, results counter = %d\n", results)
		resultMu.Unlock()
	})

	// The engine has been analyzing all along; Finish closes the stream and
	// returns every analysis's verdict from the single pass.
	rep, err := rt.Finish()
	if err != nil {
		log.Fatal(err)
	}
	for _, name := range rep.Analyses() {
		sub, _ := rep.ByAnalysis(name)
		fmt.Printf("%-7s %d statically distinct race(s), %d dynamic\n",
			name, sub.Static(), sub.Dynamic())
	}
	fmt.Println("\nThe queue hand-offs (locked) and the stop flag (volatile) are race-free;")
	fmt.Println("every reported race is the unlocked `results` counter.")
}
