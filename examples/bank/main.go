// Bank: a live Go program instrumented with race.Runtime — the scenario the
// paper's introduction motivates. Tellers transfer money between accounts
// under per-account locks; an auditor reads a balance without the account
// lock, but the observed schedule happens to order the accesses through an
// unrelated lock hand-off. HB analysis is blind to the bug in this run;
// the predictive analyses catch it from the very same execution.
//
//	go run ./examples/bank
package main

import (
	"fmt"
	"log"
	"sync"

	"repro/race"
)

type account struct {
	mu      sync.Mutex
	balance int
}

func main() {
	rt := race.NewRuntime()
	acct := &account{balance: 100}
	logMu := &sync.Mutex{} // the unrelated lock both threads use

	main := rt.Main()
	auditor := rt.Go(main)

	// The channel only makes the demo schedule deterministic; it stands in
	// for scheduler timing (the auditor happening to run first) and is not
	// synchronization the program relies on, so it is not recorded.
	handoff := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)

	// Auditor: reads the balance WITHOUT acct.mu (the bug), then appends
	// its own entry to the audit log under logMu.
	go func() {
		defer wg.Done()
		rt.Read(auditor, &acct.balance) // unprotected read
		snapshot := acct.balance
		rt.Locked(auditor, logMu, func() {
			logMu.Lock()
			rt.Write(auditor, "auditEntry")
			_ = snapshot
			logMu.Unlock()
		})
		close(handoff)
	}()

	// Teller: writes its own, unrelated log line under logMu (the critical
	// sections share the lock but touch different entries — so no relation
	// edge between them), then applies a deposit under acct.mu.
	<-handoff
	rt.Locked(main, logMu, func() {
		logMu.Lock()
		rt.Write(main, "tellerEntry")
		logMu.Unlock()
	})
	rt.Acquire(main, &acct.mu)
	acct.mu.Lock()
	rt.Write(main, &acct.balance) // properly locked write
	acct.balance += 50
	acct.mu.Unlock()
	rt.Release(main, &acct.mu)
	wg.Wait()

	hb, err := rt.Analyze(race.HB, race.FTO)
	if err != nil {
		log.Fatal(err)
	}
	st, err := rt.Analyze(race.WCP, race.SmartTrack)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("FTO-HB (FastTrack): %d races — the lock hand-off through the audit log hides the bug\n", hb.Dynamic())
	fmt.Printf("SmartTrack-WCP:     %d races — the unprotected balance read is caught\n", st.Dynamic())
	if hb.Dynamic() != 0 || st.Dynamic() == 0 {
		log.Fatal("unexpected analysis results; this example expects the Figure 1 shape")
	}

	// Prove the report is a true predictable race.
	tr, err := rt.Snapshot()
	if err != nil {
		log.Fatal(err)
	}
	r := st.Races()[0]
	res, err := race.Vindicate(tr, r.Index)
	if err != nil {
		log.Fatal(err)
	}
	if !res.Vindicated {
		log.Fatalf("vindication failed: %s", res.Reason)
	}
	fmt.Printf("vindicated: a legal reordering of this very execution makes the racing\n")
	fmt.Printf("accesses adjacent (%d-event witness) — file the bug with confidence.\n", len(res.Witness))
}
