// Command httpserver runs an HTTP-style server instrumented with the
// race/sync shadow primitives and detects a seeded predictable race
// ONLINE — while the server is handling requests — through an attached
// multi-analysis engine.
//
// The seeded bug is the paper's Figure 1 scenario living in a real
// program: the /stats handler updates a hit counter under the stats
// mutex, while the /about handler takes the same mutex only to read a
// feature flag and then increments the counter on an unguarded "fast
// path". In the observed execution the /about request happens to be
// handled after /stats, so the release→acquire edge on the mutex orders
// the two increments and happens-before (FTO-HB) sees nothing. The
// predictive relations (WCP, DC, WDC) ignore that edge — the two
// critical sections share no conflicting access — and report the race
// the first time the unguarded increment executes; vindication then
// proves it real by constructing a witness reordering.
package main

import (
	"flag"
	"fmt"
	"io"
	"net"
	"os"
	stdsync "sync"

	"repro/race"
	raceserver "repro/race/server"
	sync "repro/race/sync"
)

// The server's shared data, identified by recording keys.
const (
	keyHits     = "stats.hits"      // request counter — the racy datum
	keyEnabled  = "stats.enabled"   // feature flag read by /about
	keyGreeting = "config.greeting" // configuration read by /config
)

type request struct{ path string }

// server bundles the instrumented server state.
type server struct {
	statsMu sync.Mutex   // guards keyHits (supposedly)
	cfgMu   sync.RWMutex // guards keyGreeting
	lazy    sync.Once    // lazy config load
	wg      sync.WaitGroup
}

// handle processes one request on worker goroutine g.
func (s *server) handle(g *sync.G, req request) {
	s.lazy.Do(g, func() { g.Write(keyGreeting) })
	switch req.path {
	case "/stats":
		// Correct slow path: read-modify-write of the counter under the
		// stats mutex.
		s.statsMu.Lock(g)
		g.Read(keyHits)
		g.Write(keyHits)
		s.statsMu.Unlock(g)
	case "/about":
		// A critical section on the same mutex that does NOT touch the
		// counter — it only checks the feature flag...
		s.statsMu.Lock(g)
		g.Read(keyEnabled)
		s.statsMu.Unlock(g)
		// ...followed by the seeded bug: a "fast path" that records the
		// hit with a blind store outside any lock.
		g.Write(keyHits)
	case "/config":
		s.cfgMu.RLock(g)
		g.Read(keyGreeting)
		s.cfgMu.RUnlock(g)
	}
	s.wg.Done(g)
}

// analyses is the engine fan-out both the local and the remote variant
// run: the HB baseline that misses the seeded race plus the three
// SmartTrack predictive analyses that catch it.
var analyses = []string{"FTO-HB", "ST-WCP", "ST-DC", "ST-WDC"}

// run records and analyzes one serving session, writing online race
// reports to w as they are detected. It returns the engine's final
// report and every race delivered through the online callback.
func run(w io.Writer) (*race.Report, []race.RaceInfo, error) {
	var (
		onlineMu stdsync.Mutex
		online   []race.RaceInfo
	)
	eng, err := race.NewEngine(
		race.WithAnalysisNames(analyses...),
		race.WithVindication(),
		race.WithOnRace(func(r race.RaceInfo) {
			onlineMu.Lock()
			online = append(online, r)
			onlineMu.Unlock()
			fmt.Fprintf(w, "online: %-6s flagged a race while serving (var %d, event %d)\n",
				r.Analysis, r.Var, r.Index)
		}),
	)
	if err != nil {
		return nil, nil, err
	}
	env := sync.NewEnv(race.WithEngineAttached(eng))
	rep, err := serveTraffic(env)
	return rep, online, err
}

// serveTraffic starts the instrumented server under env, drives the three
// requests whose interleaving seeds the Figure 1 race, and finishes the
// recording — the part shared by in-process and remote detection.
func serveTraffic(env *sync.Env) (*race.Report, error) {
	root := env.Root()
	s := &server{}

	// Startup: write the configuration under the write lock.
	s.cfgMu.Lock(root)
	root.Write(keyGreeting)
	s.cfgMu.Unlock(root)

	// Two workers, each draining its own connection queue.
	qa := sync.NewChan[request](2)
	qb := sync.NewChan[request](2)
	s.wg.Add(root, 3) // three requests in flight

	// configDone and statsDone are plain, UNRECORDED channels standing in
	// for scheduler timing: they pin the observed handler order to
	// /config, /stats, /about without adding any edge the analyses can
	// observe — in the uninstrumented program the interleaving is up to
	// the scheduler, which is exactly why the race is predictable rather
	// than observed.
	configDone := make(chan struct{})
	statsDone := make(chan struct{})

	wa := root.Go(func(g *sync.G) {
		for {
			req, ok := qa.Recv(g)
			if !ok {
				close(statsDone) // qa drained: /stats has been handled
				return
			}
			<-configDone
			s.handle(g, req)
		}
	})
	wb := root.Go(func(g *sync.G) {
		configServed := false
		for {
			req, ok := qb.Recv(g)
			if !ok {
				return
			}
			if req.path == "/about" {
				<-statsDone
			}
			s.handle(g, req)
			if req.path == "/config" && !configServed {
				configServed = true
				close(configDone)
			}
		}
	})

	qa.Send(root, request{"/stats"})
	qb.Send(root, request{"/config"})
	qb.Send(root, request{"/about"})
	qa.Close(root)
	qb.Close(root)

	// Graceful shutdown: wait for in-flight requests, scrape the counter
	// (safe: ordered after every handler by Done/Wait), join the workers.
	s.wg.Wait(root)
	root.Read(keyHits)
	wa.Join(root)
	wb.Join(root)

	return env.Finish()
}

// runRemote is the end-to-end remote variant: the same instrumented server
// records through a Runtime whose sink is a session on a raced instance,
// so every committed event streams over the wire protocol and the report —
// including the vindication verdict for the seeded Figure 1 race — is
// computed by the remote detector. addr is a raced wire-protocol endpoint;
// empty spins up an in-process raced on a loopback listener.
func runRemote(w io.Writer, addr string) (*race.Report, error) {
	if addr == "" {
		lis, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		defer lis.Close()
		raced := raceserver.New(raceserver.Config{})
		defer raced.Close()
		go raced.ServeTCP(lis)
		addr = lis.Addr().String()
		fmt.Fprintf(w, "remote: in-process raced on %s\n", addr)
	}
	client, err := raceserver.Dial(addr)
	if err != nil {
		return nil, err
	}
	defer client.Close()
	sess, err := client.Open(raceserver.SessionConfig{Analyses: analyses, Vindicate: true})
	if err != nil {
		return nil, err
	}
	fmt.Fprintf(w, "remote: streaming session %s\n", sess.ID())
	env := sync.NewEnv(race.WithSink(sess))
	return serveTraffic(env)
}

func main() {
	remote := flag.Bool("remote", false, "detect remotely: stream the recording to a raced server (-addr, default in-process)")
	addr := flag.String("addr", "", "raced wire-protocol address for -remote (empty spins one up in-process)")
	flag.Parse()

	var (
		rep    *race.Report
		online []race.RaceInfo
		err    error
	)
	if *remote {
		rep, err = runRemote(os.Stdout, *addr)
	} else {
		rep, online, err = run(os.Stdout)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "httpserver:", err)
		os.Exit(1)
	}
	fmt.Println()
	fmt.Println("final reports (dynamic/static races):")
	for _, name := range rep.Analyses() {
		sub, _ := rep.ByAnalysis(name)
		verdict := ""
		if rs := sub.Races(); len(rs) > 0 {
			if res, ok := rep.Vindication(rs[0].Index); ok && res.Vindicated {
				verdict = "  (vindicated: witness reordering verified)"
			}
		}
		fmt.Printf("  %-6s  %d/%d%s\n", name, sub.Dynamic(), sub.Static(), verdict)
	}
	if *remote {
		fmt.Println("\ndetection ran on the raced server: HB misses the Figure 1 race; WCP/DC/WDC catch it over the wire")
	} else {
		fmt.Printf("\nonline detections: %d — HB misses the Figure 1 race; WCP/DC/WDC catch it during execution\n", len(online))
	}
}
