package main

import (
	"bytes"
	"testing"
)

// TestSeededRaceReportedOnlineHBMisses is the acceptance check for the
// instrumented server: run under the attached engine, the seeded Figure 1
// race is reported online by the predictive analyses (WCP, DC, WDC) but
// not by happens-before, and vindication verifies a witness.
func TestSeededRaceReportedOnlineHBMisses(t *testing.T) {
	var buf bytes.Buffer
	rep, online, err := run(&buf)
	if err != nil {
		t.Fatalf("run: %v", err)
	}

	hb, ok := rep.ByAnalysis("FTO-HB")
	if !ok {
		t.Fatal("missing FTO-HB sub-report")
	}
	if hb.Dynamic() != 0 {
		t.Errorf("FTO-HB reported %d races; the observed execution is HB-ordered: %v", hb.Dynamic(), hb.Races())
	}

	onlineBy := make(map[string]int)
	for _, r := range online {
		onlineBy[r.Analysis]++
	}
	if onlineBy["FTO-HB"] != 0 {
		t.Errorf("FTO-HB fired %d online callbacks", onlineBy["FTO-HB"])
	}
	for _, name := range []string{"ST-WCP", "ST-DC", "ST-WDC"} {
		sub, ok := rep.ByAnalysis(name)
		if !ok {
			t.Fatalf("missing %s sub-report", name)
		}
		if sub.Dynamic() == 0 {
			t.Errorf("%s missed the seeded predictable race", name)
			continue
		}
		if onlineBy[name] == 0 {
			t.Errorf("%s reported no race online (callbacks during serving)", name)
		}
		res, ok := rep.Vindication(sub.Races()[0].Index)
		if !ok {
			t.Errorf("%s: no vindication verdict for the seeded race", name)
		} else if !res.Vindicated {
			t.Errorf("%s: seeded race not vindicated: %s", name, res.Reason)
		}
	}
}

// TestRunDeterministicOutcome re-runs the server several times: the
// scheduler gate makes the detection outcome (not the exact interleaving)
// stable.
func TestRunDeterministicOutcome(t *testing.T) {
	for i := 0; i < 10; i++ {
		var buf bytes.Buffer
		rep, _, err := run(&buf)
		if err != nil {
			t.Fatalf("iteration %d: %v", i, err)
		}
		hb, _ := rep.ByAnalysis("FTO-HB")
		wdc, _ := rep.ByAnalysis("ST-WDC")
		if hb.Dynamic() != 0 || wdc.Dynamic() == 0 {
			t.Fatalf("iteration %d: HB=%d WDC=%d", i, hb.Dynamic(), wdc.Dynamic())
		}
	}
}

// TestRemoteDetectionEndToEnd is the acceptance check for the raced
// variant: the same instrumented server, recording through a Runtime whose
// sink is a wire-protocol session on an in-process raced instance, yields
// the same verdict — the seeded Figure 1 race is missed by happens-before,
// caught by the predictive analyses, and vindicated — with all analysis
// work done on the remote detector.
func TestRemoteDetectionEndToEnd(t *testing.T) {
	var buf bytes.Buffer
	rep, err := runRemote(&buf, "")
	if err != nil {
		t.Fatalf("runRemote: %v", err)
	}
	hb, ok := rep.ByAnalysis("FTO-HB")
	if !ok {
		t.Fatal("missing FTO-HB sub-report")
	}
	if hb.Dynamic() != 0 {
		t.Errorf("FTO-HB reported %d races over the wire; the observed execution is HB-ordered", hb.Dynamic())
	}
	for _, name := range []string{"ST-WCP", "ST-DC", "ST-WDC"} {
		sub, ok := rep.ByAnalysis(name)
		if !ok {
			t.Fatalf("missing %s sub-report", name)
		}
		if sub.Dynamic() == 0 {
			t.Errorf("%s missed the seeded predictable race remotely", name)
			continue
		}
		res, ok := rep.Vindication(sub.Races()[0].Index)
		if !ok {
			t.Errorf("%s: vindication verdict lost in the report round-trip", name)
		} else if !res.Vindicated {
			t.Errorf("%s: seeded race not vindicated remotely: %s", name, res.Reason)
		}
	}
}
