// Quickstart: build the paper's Figure 1 execution with the trace Builder,
// run happens-before and the three predictive analyses over it, and
// vindicate the predictive race.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/race"
)

func main() {
	// Figure 1(a) of the paper: Thread 1 reads x and then uses lock m;
	// Thread 2 uses lock m and then writes x. The critical sections do not
	// conflict, so the execution can be reordered to make rd(x) and wr(x)
	// adjacent — a predictable race that HB analysis cannot see.
	b := race.NewBuilder()
	b.Read("T1", "x")
	b.Acq("T1", "m").Write("T1", "y").Rel("T1", "m")
	b.Acq("T2", "m").Read("T2", "z").Rel("T2", "m")
	b.Write("T2", "x")
	tr := b.Build()
	if err := race.CheckTrace(tr); err != nil {
		log.Fatal(err)
	}

	fmt.Println("analysis            races")
	for _, cfg := range []struct {
		rel race.Relation
		lvl race.Level
		tag string
	}{
		{race.HB, race.FTO, "FTO-HB (FastTrack)"},
		{race.WCP, race.SmartTrack, "SmartTrack-WCP"},
		{race.DC, race.SmartTrack, "SmartTrack-DC"},
		{race.WDC, race.SmartTrack, "SmartTrack-WDC"},
	} {
		rep := race.Analyze(tr, cfg.rel, cfg.lvl)
		fmt.Printf("%-19s %d\n", cfg.tag, rep.Dynamic())
	}

	// The predictive analyses report one race; prove it is real by
	// constructing a witness reordering.
	rep := race.Analyze(tr, race.WDC, race.SmartTrack)
	r := rep.Races()[0]
	res := race.Vindicate(tr, r.Index)
	if !res.Vindicated {
		log.Fatalf("expected vindication, got: %s", res.Reason)
	}
	fmt.Println("\nwitness reordering exposing the race (cf. Figure 1(b)):")
	for _, e := range res.Witness {
		fmt.Printf("  %v\n", e)
	}
}
