// Quickstart: build the paper's Figure 1 execution with the trace Builder,
// run happens-before and the three predictive analyses over it — first
// through the batch Analyze wrapper, then through the streaming Engine,
// which detects the race online, mid-stream — and vindicate the predictive
// race.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/race"
)

func main() {
	// Figure 1(a) of the paper: Thread 1 reads x and then uses lock m;
	// Thread 2 uses lock m and then writes x. The critical sections do not
	// conflict, so the execution can be reordered to make rd(x) and wr(x)
	// adjacent — a predictable race that HB analysis cannot see.
	b := race.NewBuilder()
	b.Read("T1", "x")
	b.Acq("T1", "m").Write("T1", "y").Rel("T1", "m")
	b.Acq("T2", "m").Read("T2", "z").Rel("T2", "m")
	b.Write("T2", "x")
	tr := b.Build()
	if err := race.CheckTrace(tr); err != nil {
		log.Fatal(err)
	}

	// Batch mode: Analyze wraps the streaming engine for whole traces.
	fmt.Println("analysis            races")
	for _, cfg := range []struct {
		rel race.Relation
		lvl race.Level
		tag string
	}{
		{race.HB, race.FTO, "FTO-HB (FastTrack)"},
		{race.WCP, race.SmartTrack, "SmartTrack-WCP"},
		{race.DC, race.SmartTrack, "SmartTrack-DC"},
		{race.WDC, race.SmartTrack, "SmartTrack-WDC"},
	} {
		rep, err := race.Analyze(tr, cfg.rel, cfg.lvl)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-19s %d\n", cfg.tag, rep.Dynamic())
	}

	// Streaming mode: the engine exists before any events do, fans the
	// stream out to several analyses in one pass, and reports the race the
	// moment the detecting access is fed — online, as the paper's analyses
	// run inside RoadRunner.
	eng, err := race.NewEngine(
		race.WithAnalyses(
			race.Cell{Relation: race.HB, Level: race.FTO},
			race.Cell{Relation: race.WDC, Level: race.SmartTrack},
		),
		race.WithOnRace(func(r race.RaceInfo) {
			fmt.Printf("\nonline: %s flags var %d at event %d, mid-stream\n",
				r.Analysis, r.Var, r.Index)
		}),
	)
	if err != nil {
		log.Fatal(err)
	}
	for _, e := range tr.Events {
		if err := eng.Feed(e); err != nil {
			log.Fatal(err)
		}
	}
	rep, err := eng.Close()
	if err != nil {
		log.Fatal(err)
	}
	for _, name := range rep.Analyses() {
		sub, _ := rep.ByAnalysis(name)
		fmt.Printf("engine %-8s %d race(s) in one pass\n", name, sub.Dynamic())
	}

	// The predictive analyses report one race; prove it is real by
	// constructing a witness reordering.
	st, _ := rep.ByAnalysis("ST-WDC")
	r := st.Races()[0]
	res, err := race.Vindicate(tr, r.Index)
	if err != nil {
		log.Fatal(err)
	}
	if !res.Vindicated {
		log.Fatalf("expected vindication, got: %s", res.Reason)
	}
	fmt.Println("\nwitness reordering exposing the race (cf. Figure 1(b)):")
	for _, e := range res.Witness {
		fmt.Printf("  %v\n", e)
	}
}
